package answer

import (
	"errors"

	"incxml/internal/budget"
	"incxml/internal/itree"
	"incxml/internal/query"
)

// The budgeted deciders are the three-valued forms of the Corollary 3.15 /
// 3.18 decision procedures. Each returns an exact Yes/No only when the full
// q(T) construction fit the budget, and Unknown with an error matching
// budget.ErrExhausted when it did not; a non-budget error (invalid query)
// also yields Unknown, with the genuine error. Exact results still flow
// through the shared decision cache — a cache hit answers instantly without
// spending budget, and exhaustion is never cached (cachedDecision does not
// cache errors), so a later retry with a larger budget can succeed.

// triDecision runs one cached budgeted decision and folds the outcome into
// a verdict.
func triDecision(it *itree.T, q query.Query, kind uint8,
	compute func() (bool, error)) (budget.Tri, error) {
	v, err := cachedDecision(it, q, kind, compute)
	if err != nil {
		recordTri(kind, budget.Unknown, err)
		return budget.Unknown, err
	}
	recordTri(kind, budget.Of(v), nil)
	return budget.Of(v), nil
}

// FullyAnswerableBudgeted is FullyAnswerable under a budget.
func FullyAnswerableBudgeted(it *itree.T, q query.Query, bud *budget.B) (budget.Tri, error) {
	return triDecision(it, q, kindFully, func() (bool, error) {
		return fullyAnswerable(it, q, bud)
	})
}

// PossiblyNonEmptyBudgeted is PossiblyNonEmpty under a budget.
func PossiblyNonEmptyBudgeted(it *itree.T, q query.Query, bud *budget.B) (budget.Tri, error) {
	return triDecision(it, q, kindPossiblyNonEmpty, func() (bool, error) {
		ans, err := ApplyBudgeted(it, q, bud)
		if err != nil {
			return false, err
		}
		return len(ans.Type.Roots) > 0 && !ansEffective(ans).Empty(), nil
	})
}

// CertainlyNonEmptyBudgeted is CertainlyNonEmpty under a budget.
func CertainlyNonEmptyBudgeted(it *itree.T, q query.Query, bud *budget.B) (budget.Tri, error) {
	return triDecision(it, q, kindCertainlyNonEmpty, func() (bool, error) {
		ans, err := ApplyBudgeted(it, q, bud)
		if err != nil {
			return false, err
		}
		if ans.MayBeEmpty {
			return false, nil
		}
		return len(ans.Type.Roots) > 0 && !ansEffective(ans).Empty(), nil
	})
}

// IsExhausted reports whether err is a budget exhaustion (as opposed to a
// genuine solver error), for callers that branch on the Unknown cause.
func IsExhausted(err error) bool { return errors.Is(err, budget.ErrExhausted) }
