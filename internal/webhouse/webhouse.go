// Package webhouse implements the paper's motivating system: an XML
// warehouse that accumulates incomplete information about remote sources by
// querying them (Section 1). Sources are simulated as in-memory documents
// with persistent node ids (the substitution for live Web sources; see
// DESIGN.md).
//
// For each source the webhouse maintains a reachable incomplete tree via
// Algorithm Refine. A user query can be answered three ways:
//
//   - locally and exactly, when Corollary 3.15 certifies the query fully
//     answerable from the data tree;
//   - locally and approximately, returning the q(T) incomplete tree of
//     possible answers (Theorem 3.14) together with certain/possible
//     information;
//   - completely, by executing a non-redundant set of local queries against
//     the source (Theorem 3.19) and merging the answers.
//
// The webhouse is a serving layer: all entry points are safe for concurrent
// use and take a context whose deadline bounds the work — source access,
// retries and pooled sub-computations are all cancelled when it expires.
// Source access goes through a faulty.SourceClient (per repository), so a
// slow or down source degrades AnswerComplete to the best approximate local
// answer (Theorem 3.14), flagged Degraded, instead of blocking or erroring.
// Each repository guards its refinement state with an RWMutex so many
// readers (AnswerLocally, AnswerExtended, Knowledge) proceed in parallel
// while acquisition (Explore, AnswerComplete, Invalidate, Update) is
// exclusive; no lock is held across source I/O. Local answers are cached
// per source under the query's canonical string and invalidated whenever
// the knowledge changes.
package webhouse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"incxml/internal/answer"
	"incxml/internal/budget"
	"incxml/internal/certify"
	"incxml/internal/dtd"
	"incxml/internal/engine"
	"incxml/internal/faulty"
	"incxml/internal/heuristics"
	"incxml/internal/intern"
	"incxml/internal/itree"
	"incxml/internal/mediator"
	"incxml/internal/obs"
	"incxml/internal/query"
	"incxml/internal/refine"
	"incxml/internal/tree"
)

// Source simulates a remote XML document behind a ps-query interface with
// persistent node identifiers (Remark 2.4). It satisfies faulty.Backend.
type Source struct {
	Name string
	Type *dtd.Type

	// mu guards doc only. Queries snapshot the document pointer under mu
	// and evaluate outside it, so concurrent Ask calls overlap and never
	// block Doc or Update; documents are treated as immutable (Update
	// replaces the pointer, never mutates in place).
	mu  sync.Mutex
	doc tree.Tree

	queriesServed atomic.Int64
	nodesServed   atomic.Int64
}

// testHookSourceEval, when set, runs between the document snapshot and the
// query evaluation in Ask/AskLocal. Tests use it to prove evaluation
// happens outside the source lock.
var testHookSourceEval func()

// NewSource wraps a document; it must conform to the type.
func NewSource(name string, ty *dtd.Type, doc tree.Tree) (*Source, error) {
	if err := ty.Validate(doc); err != nil {
		return nil, fmt.Errorf("webhouse: source %q: %v", name, err)
	}
	return &Source{Name: name, Type: ty, doc: doc}, nil
}

// Doc returns the current document. Callers must treat it as read-only.
func (s *Source) Doc() tree.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc
}

// Served reports the query and node counters.
func (s *Source) Served() (queries, nodes int) {
	return int(s.queriesServed.Load()), int(s.nodesServed.Load())
}

// record tallies one served query answering a nodes.
func (s *Source) record(a tree.Tree) tree.Tree {
	s.queriesServed.Add(1)
	s.nodesServed.Add(int64(a.Size()))
	return a
}

// Ask evaluates a ps-query against the full document. The document is
// snapshotted under the source lock and evaluated outside it, so slow
// queries do not serialize readers.
func (s *Source) Ask(q query.Query) tree.Tree {
	doc := s.Doc()
	if h := testHookSourceEval; h != nil {
		h()
	}
	return s.record(q.Eval(doc))
}

// AskLocal evaluates a local query p@n.
func (s *Source) AskLocal(lq mediator.LocalQuery) tree.Tree {
	doc := s.Doc()
	if h := testHookSourceEval; h != nil {
		h()
	}
	return s.record(lq.Execute(doc))
}

// Update replaces the source document (the source changed). Prefer
// Webhouse.Update, which also drops the now-stale knowledge.
func (s *Source) Update(doc tree.Tree) error {
	if err := s.Type.Validate(doc); err != nil {
		return err
	}
	s.mu.Lock()
	s.doc = doc
	s.mu.Unlock()
	return nil
}

// Repository is the webhouse's incomplete knowledge about one source.
//
// mu guards the refiner (the knowledge); cacheMu guards the answer caches
// and the generation counter together. Lock order is mu before cacheMu;
// neither is ever held across source I/O — the client is called between
// the knowledge snapshot and the fold-in.
type Repository struct {
	Source *Source

	clientMu sync.RWMutex
	client   faulty.SourceClient

	mu      sync.RWMutex
	refiner *refine.Refiner

	cacheMu sync.Mutex
	gen     atomic.Uint64
	answers map[intern.ID]*LocalAnswer
	ext     map[intern.ID]*ExtendedAnswer

	// quarantined marks a repository recovery could not restore: it serves
	// from pristine (empty) knowledge, flagged so operators and stats can
	// tell degraded-by-design from healthy (see Webhouse.Quarantine).
	quarantined atomic.Bool
}

// invalidate marks the knowledge changed and drops all cached answers.
// The generation bump and the map clear form one cacheMu critical section:
// anyone holding cacheMu observes them atomically, so a cached entry can
// never coexist with a newer generation (see storeLocal).
func (r *Repository) invalidate() {
	r.cacheMu.Lock()
	r.gen.Add(1)
	r.answers = map[intern.ID]*LocalAnswer{}
	r.ext = map[intern.ID]*ExtendedAnswer{}
	r.cacheMu.Unlock()
}

// Client returns the source-access client serving this repository.
func (r *Repository) Client() faulty.SourceClient {
	r.clientMu.RLock()
	defer r.clientMu.RUnlock()
	return r.client
}

// Webhouse is a registry of repositories, safe for concurrent use.
type Webhouse struct {
	// journalState is the durability attachment point: every applied
	// acquisition mutation is emitted to the installed Journal (see
	// journal.go and internal/store).
	journalState

	mu    sync.RWMutex
	repos map[string]*Repository

	pool        *engine.Pool
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	degraded    atomic.Uint64

	// budgetSteps is the per-request step allowance for the solver budgets
	// (0 = step-unlimited; the context deadline still applies). shrinkTo is
	// the lossy-fallback size cap (0 = refine.DefaultShrinkTo).
	budgetSteps       atomic.Int64
	shrinkTo          atomic.Int64
	budgetExhaustions atomic.Uint64
	lossyFallbacks    atomic.Uint64
}

// New creates an empty webhouse backed by the default worker pool.
func New() *Webhouse {
	return &Webhouse{repos: map[string]*Repository{}, pool: engine.Default()}
}

// SetPool installs the worker pool used to fan out local-answer
// sub-computations. Call before serving; nil restores the default pool.
func (wh *Webhouse) SetPool(p *engine.Pool) {
	if p == nil {
		p = engine.Default()
	}
	wh.mu.Lock()
	wh.pool = p
	wh.mu.Unlock()
}

func (wh *Webhouse) getPool() *engine.Pool {
	wh.mu.RLock()
	defer wh.mu.RUnlock()
	return wh.pool
}

// SetBudget sets the per-request step allowance of the solver budgets;
// 0 disables the step limit (the context deadline alone bounds the work).
// Budgeted solvers whose exact run would exceed the allowance degrade to the
// lossy-shrinking fallback instead of pinning a goroutine (DESIGN.md
// "Resource budgets & overload control").
func (wh *Webhouse) SetBudget(steps int64) { wh.budgetSteps.Store(steps) }

// BudgetSteps reports the configured per-request step allowance.
func (wh *Webhouse) BudgetSteps() int64 { return wh.budgetSteps.Load() }

// SetShrinkTo sets the representation-size cap the lossy fallback shrinks
// knowledge to; 0 restores refine.DefaultShrinkTo.
func (wh *Webhouse) SetShrinkTo(n int) { wh.shrinkTo.Store(int64(n)) }

func (wh *Webhouse) shrinkCap() int {
	if n := wh.shrinkTo.Load(); n > 0 {
		return int(n)
	}
	return refine.DefaultShrinkTo
}

// newBudget builds the cooperative budget for one request. It returns nil
// (unlimited) when no step allowance is configured and the context carries
// no deadline, so unconfigured webhouses behave exactly as before. A
// request-scoped budget.WithStepCap on the context can only tighten the
// configured allowance, never widen it.
func (wh *Webhouse) newBudget(ctx context.Context) *budget.B {
	steps := wh.effectiveSteps(ctx)
	if steps <= 0 && ctx.Done() == nil {
		return nil
	}
	return budget.New(ctx, steps)
}

// effectiveSteps folds the request-scoped step cap into the configured
// allowance: the smaller of the two wins (a cap on an unlimited server
// simply applies).
func (wh *Webhouse) effectiveSteps(ctx context.Context) int64 {
	steps := wh.budgetSteps.Load()
	if cap, ok := budget.StepCapFromContext(ctx); ok && cap > 0 && (steps <= 0 || cap < steps) {
		steps = cap
	}
	return steps
}

// Register adds a source, initializing its knowledge to the source's tree
// type (everything about the document itself is unknown). Access goes
// through a fault-free direct client; use SetClient to interpose retry or
// fault-injection layers.
func (wh *Webhouse) Register(src *Source) {
	wh.mu.Lock()
	defer wh.mu.Unlock()
	wh.repos[src.Name] = &Repository{
		Source:  src,
		client:  faulty.NewDirect(src),
		refiner: refine.NewRefiner(src.Type.Alphabet(), src.Type),
		answers: map[intern.ID]*LocalAnswer{},
		ext:     map[intern.ID]*ExtendedAnswer{},
	}
}

// SetClient installs the source-access client for a registered source —
// typically a faulty.RetryClient wrapping an unreliable transport. nil
// restores the fault-free direct client.
func (wh *Webhouse) SetClient(source string, c faulty.SourceClient) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	if c == nil {
		c = faulty.NewDirect(r.Source)
	}
	r.clientMu.Lock()
	r.client = c
	r.clientMu.Unlock()
	return nil
}

// ErrUnknownSource reports a lookup of an unregistered source name.
var ErrUnknownSource = errors.New("unknown source")

// Repo returns the repository for a source.
func (wh *Webhouse) Repo(name string) (*Repository, error) {
	wh.mu.RLock()
	r, ok := wh.repos[name]
	wh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("webhouse: %w %q", ErrUnknownSource, name)
	}
	return r, nil
}

// Sources lists the registered source names in sorted order. The slice is a
// copy; callers may retain it.
func (wh *Webhouse) Sources() []string {
	wh.mu.RLock()
	out := make([]string, 0, len(wh.repos))
	for n := range wh.repos {
		out = append(out, n)
	}
	wh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats aggregates the serving-layer counters: the per-source answer cache,
// the shared decision and membership caches, source-access reliability, and
// the worker pool.
type Stats struct {
	// AnswerCacheHits/Misses count AnswerLocally and AnswerExtended lookups
	// served from (resp. missing) the per-source answer caches. These are
	// per-webhouse.
	AnswerCacheHits   uint64
	AnswerCacheMisses uint64
	// DegradedAnswers counts AnswerComplete calls that fell back to the
	// approximate local answer because the source was unavailable.
	DegradedAnswers uint64
	// BudgetExhaustions counts local computations whose step or deadline
	// budget ran out; LossyFallbacks counts those recovered (at least
	// partially) through the Proposition 3.13 lossy-shrinking fallback.
	BudgetExhaustions uint64
	LossyFallbacks    uint64
	// Source aggregates retry/breaker counters over every repository whose
	// client exposes faulty.ClientStats (direct clients report nothing).
	Source faulty.ClientStats
	// Decision is the answer package's decision-procedure cache and
	// Membership the itree membership/prefix result cache. Both caches are
	// PROCESS-GLOBAL: all webhouses (and direct itree/answer callers) in
	// the process share them, because entries are keyed by content
	// fingerprints and are therefore valid across instances. Two webhouses
	// in one process deliberately see each other's traffic in these two
	// counters; treat them as process gauges, not per-webhouse ones.
	Decision engine.CacheStats
	// Membership is the itree membership/prefix result cache (shared; see
	// Decision).
	Membership engine.CacheStats
	// Engine reports worker-pool utilization (shared iff the pool is).
	Engine engine.Stats
	// Intern reports the process-global intern tables (strings, conditions,
	// hash-consed trees): entry counts, hit/miss traffic, and the bytes of
	// duplicate content the sharing avoided. Like Decision/Membership these
	// are process gauges, not per-webhouse ones.
	Intern []intern.TableStats
}

// clientStats is implemented by clients that track reliability counters
// (faulty.RetryClient).
type clientStats interface{ Stats() faulty.ClientStats }

// Stats returns a snapshot of the webhouse's serving counters.
func (wh *Webhouse) Stats() Stats {
	p := wh.getPool()
	src := wh.sourceStats()
	return Stats{
		AnswerCacheHits:   wh.cacheHits.Load(),
		AnswerCacheMisses: wh.cacheMisses.Load(),
		DegradedAnswers:   wh.degraded.Load(),
		BudgetExhaustions: wh.budgetExhaustions.Load(),
		LossyFallbacks:    wh.lossyFallbacks.Load(),
		Source:            src,
		Decision:          answer.CacheStats(),
		Membership:        itree.CacheStats(),
		Engine:            p.Stats(),
		Intern:            intern.Stats(),
	}
}

// observeLocked folds the answer a of query q into r with the paper's
// recovery strategy: when the observation contradicts the accumulated
// knowledge — the source changed under us — the repository is
// reinitialized to the source type and the observation replayed against
// the fresh state. The refinement runs under the webhouse budget: on
// exhaustion the refiner degrades to the Proposition 3.13 lossy shrink
// rather than dropping the (already paid-for) source answer, so
// acquisition never fails on budget grounds — it merely coarsens. The
// caller must hold r.mu for writing.
func (wh *Webhouse) observeLocked(ctx context.Context, r *Repository, q query.Query, a tree.Tree) error {
	lossy, err := r.refiner.ObserveBudgeted(q, a, wh.newBudget(ctx), wh.shrinkCap())
	if errors.Is(err, refine.ErrInconsistent) {
		r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
		lossy, err = r.refiner.ObserveBudgeted(q, a, wh.newBudget(ctx), wh.shrinkCap())
	}
	if lossy {
		wh.lossyFallbacks.Add(1)
	}
	return err
}

// Explore poses a ps-query to the source and folds the answer into the
// repository (the acquisition loop of Section 3.1). The source is reached
// through the repository's client outside any repository lock, so a slow
// source never blocks concurrent readers; the context's deadline bounds
// the call, retries included. Cached local answers for the source are
// dropped on success. When the source is unavailable the returned error
// wraps faulty.ErrUnavailable and the knowledge is left unchanged —
// acquisition, unlike AnswerComplete, has no approximate fallback.
func (wh *Webhouse) Explore(ctx context.Context, source string, q query.Query) (tree.Tree, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, err
	}
	endSource := obs.FromContext(ctx).Stage("source")
	a, err := r.Client().Ask(ctx, q)
	endSource(0)
	if err != nil {
		return tree.Tree{}, fmt.Errorf("webhouse: explore %q: %w", source, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := wh.observeLocked(ctx, r, q, a); err != nil {
		return tree.Tree{}, err
	}
	r.invalidate()
	wh.journalRecord(observeEventLocked(r, q, a))
	return a, nil
}

// Knowledge returns the reachable incomplete tree for the source. The
// returned tree is a snapshot: later Explore calls do not mutate it.
func (wh *Webhouse) Knowledge(source string) (*itree.T, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.refiner.Reachable(), nil
}

// Invalidate reinitializes the knowledge about a source to its tree type
// (the paper's treatment of source updates) and drops its cached answers.
func (wh *Webhouse) Invalidate(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetLocked()
	wh.journalRecord(JournalEvent{
		Kind:      EventInvalidate,
		Source:    r.Source.Name,
		Knowledge: r.refiner.Tree(),
	})
	return nil
}

// Update replaces a source's document and invalidates the now-stale
// knowledge and cached answers in one step.
func (wh *Webhouse) Update(source string, doc tree.Tree) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.Source.Update(doc); err != nil {
		return err
	}
	r.resetLocked()
	wh.journalRecord(JournalEvent{
		Kind:      EventUpdate,
		Source:    r.Source.Name,
		Doc:       doc,
		Knowledge: r.refiner.Tree(),
	})
	return nil
}

// LocalAnswer is the result of answering a query from local knowledge only.
// Instances returned by AnswerLocally may be shared between callers; treat
// them as read-only.
type LocalAnswer struct {
	// Fully reports whether the query was certified fully answerable
	// (Corollary 3.15): Exact then equals q(T) for every possible world.
	Fully bool
	// Exact is the answer computed on the data tree (meaningful when Fully).
	Exact tree.Tree
	// Possible is the incomplete tree q(T) describing all possible answers
	// (Theorem 3.14). When PossibleLossy is set it was computed from a
	// lossy-shrunk knowledge tree and over-approximates the possible
	// answers (still sound as a set of candidates).
	Possible *itree.T
	// CertainlyNonEmpty and PossiblyNonEmpty are the Corollary 3.18
	// modalities, collapsed to their sound boolean reading:
	// CertainlyNonEmpty (and Fully) are true only on an exact or
	// soundly-degraded Yes, while PossiblyNonEmpty stays true when the
	// verdict is Unknown — an undecided source may still hold relevant
	// information.
	CertainlyNonEmpty bool
	PossiblyNonEmpty  bool

	// FullyV, CertainlyNonEmptyV and PossiblyNonEmptyV are the three-valued
	// verdicts behind the booleans: Yes/No are exact (or established through
	// a sound-direction fallback), Unknown means the budget ran out before
	// the facet was decided in a sound direction.
	FullyV             budget.Tri
	CertainlyNonEmptyV budget.Tri
	PossiblyNonEmptyV  budget.Tri
	// Lossy reports that at least one facet was recovered through the
	// Proposition 3.13 lossy-shrinking fallback. PossibleLossy flags the
	// Possible tree specifically.
	Lossy         bool
	PossibleLossy bool
	// BudgetExhausted reports that the request budget ran out while
	// computing this answer (the answer is then never cached).
	BudgetExhausted bool
	// Certificate is the completeness certificate: the maximal sub-query
	// (under the certify budget) for which Exact is provably complete, plus
	// the certain-region summary. Never nil on answers built by the
	// webhouse; read-only.
	Certificate *certify.Certificate
}

// lookupLocal consults a repository answer cache; see storeLocal for the
// staleness protocol.
func (wh *Webhouse) lookupLocal(r *Repository, key intern.ID) (*LocalAnswer, bool) {
	r.cacheMu.Lock()
	la, ok := r.answers[key]
	r.cacheMu.Unlock()
	if ok {
		wh.cacheHits.Add(1)
	} else {
		wh.cacheMisses.Add(1)
	}
	return la, ok
}

// storeLocal inserts a computed answer unless the knowledge changed since
// the computation started. invalidate bumps gen and clears the maps in one
// cacheMu critical section, so the gen check under cacheMu is exact: the
// insert happens iff no invalidation intervened since the snapshot.
func (r *Repository) storeLocal(gen uint64, key intern.ID, la *LocalAnswer) {
	r.cacheMu.Lock()
	if r.gen.Load() == gen {
		r.answers[key] = la
	}
	r.cacheMu.Unlock()
}

// snapshot reads the repository's generation and knowledge consistently.
func (r *Repository) snapshot() (uint64, *itree.T) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen.Load(), r.refiner.Reachable()
}

// fallbackSteps bounds the lossy-fallback recomputation: the shrunk tree is
// small by construction, so this allowance is generous for it while still
// guaranteeing the fallback itself terminates promptly.
const fallbackSteps = 1 << 20

// computeLocal evaluates the four local-answer facets of q on know across
// the worker pool, honoring the context's deadline and the webhouse's
// per-request step budget. When the deadline expires before every facet
// ran, the context error is returned instead of a partial answer. When the
// step allowance runs out, the facets degrade soundly through the
// Proposition 3.13 lossy-shrinking fallback: verdicts that the rep-superset
// decides in the sound direction (Fully/CertainlyNonEmpty Yes,
// PossiblyNonEmpty No) are kept exact, the rest report Unknown.
func (wh *Webhouse) computeLocal(ctx context.Context, know *itree.T, q query.Query) (*LocalAnswer, error) {
	bud := wh.newBudget(ctx)
	endStage := obs.FromContext(ctx).Stage("local")
	defer func() {
		used := bud.Used()
		stepsUsed.Observe(used)
		endStage(used)
	}()
	out := &LocalAnswer{}
	var errs [4]error
	tasks := []func(){
		func() { out.FullyV, errs[0] = answer.FullyAnswerableBudgeted(know, q, bud) },
		func() { out.Exact = q.Eval(know.DataTree()) },
		func() { out.Possible, errs[1] = answer.ApplyBudgeted(know, q, bud) },
		func() { out.CertainlyNonEmptyV, errs[2] = answer.CertainlyNonEmptyBudgeted(know, q, bud) },
		func() { out.PossiblyNonEmptyV, errs[3] = answer.PossiblyNonEmptyBudgeted(know, q, bud) },
	}
	if err := wh.getPool().Each(ctx, len(tasks), func(i int) { tasks[i]() }); err != nil {
		return nil, err
	}
	exhausted := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, budget.ErrExhausted) {
			return nil, err
		}
		exhausted = true
	}
	if exhausted {
		wh.budgetExhaustions.Add(1)
		out.BudgetExhausted = true
		if bud.ExhaustedCause() == budget.CauseDeadline {
			// Deadline exhaustion is the caller's timeout, not overload the
			// webhouse can shed work around: surface the context error so
			// the serving layer maps it to a timeout response.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, bud.Err()
		}
		wh.fallbackLocal(know, q, out)
	}
	out.Fully = out.FullyV == budget.Yes
	out.CertainlyNonEmpty = out.CertainlyNonEmptyV == budget.Yes
	// Unknown must not rule the source out: only an established No does.
	out.PossiblyNonEmpty = out.PossiblyNonEmptyV != budget.No
	// Completeness certificate, under its own bounded budget: exhausting the
	// request budget above must not erase the certificate (a degraded answer
	// is exactly when the caller needs to know what it can still trust), and
	// certification itself must never pin a goroutine — the greedy growth is
	// a handful of Corollary 3.15 checks, each step-bounded. When the main
	// budget already certified the whole query, Compute's first probe is a
	// decision-cache hit and the certificate is immediate.
	endCert := obs.FromContext(ctx).Stage("certify")
	out.Certificate = certify.Compute(know, q, budget.New(ctx, certifySteps(wh.effectiveSteps(ctx))))
	endCert(0)
	return out, nil
}

// certifySteps bounds one certificate computation: the configured request
// allowance when set, else the same generous-but-finite cap as the lossy
// fallback.
func certifySteps(configured int64) int64 {
	if configured > 0 {
		return configured
	}
	return fallbackSteps
}

// fallbackLocal resolves Unknown facets through the lossy-shrinking escape
// hatch (Proposition 3.13). The shrunk tree S satisfies rep(T) ⊆ rep(S), so
// only one direction of each verdict transfers soundly:
//
//   - FullyAnswerable(S) = yes  ⇒ fully answerable on T (∀ over a superset);
//   - CertainlyNonEmpty(S) = yes ⇒ certainly non-empty on T (same);
//   - PossiblyNonEmpty(S) = no  ⇒ possibly-non-empty is no on T (∃ fails
//     over the superset);
//
// and q(S) over-approximates the possible answers. Facets the fallback
// cannot decide soundly stay Unknown.
func (wh *Webhouse) fallbackLocal(know *itree.T, q query.Query, out *LocalAnswer) {
	shrunk := heuristics.LossyShrink(know, wh.shrinkCap())
	fb := budget.New(context.Background(), fallbackSteps)
	used := false
	if out.FullyV == budget.Unknown {
		if v, err := answer.FullyAnswerableBudgeted(shrunk, q, fb); err == nil && v == budget.Yes {
			out.FullyV = budget.Yes
			used = true
		}
	}
	if out.CertainlyNonEmptyV == budget.Unknown {
		if v, err := answer.CertainlyNonEmptyBudgeted(shrunk, q, fb); err == nil && v == budget.Yes {
			out.CertainlyNonEmptyV = budget.Yes
			used = true
		}
	}
	if out.PossiblyNonEmptyV == budget.Unknown {
		if v, err := answer.PossiblyNonEmptyBudgeted(shrunk, q, fb); err == nil && v == budget.No {
			out.PossiblyNonEmptyV = budget.No
			used = true
		}
	}
	if out.Possible == nil {
		if p, err := answer.ApplyBudgeted(shrunk, q, fb); err == nil {
			out.Possible = p
			out.PossibleLossy = true
			used = true
		}
	}
	if used {
		out.Lossy = true
		wh.lossyFallbacks.Add(1)
	}
}

// AnswerLocally answers q from the repository without contacting the
// source. Repeated calls with the same query on unchanged knowledge are
// served from the per-source cache; the independent sub-answers of a miss
// are fanned out across the worker pool under the caller's deadline.
func (wh *Webhouse) AnswerLocally(ctx context.Context, source string, q query.Query) (*LocalAnswer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	// The canonical query string is interned once; the cache map is keyed by
	// the stable 8-byte ID, so repeated lookups compare and hash a word
	// instead of re-hashing the rendered query.
	key := intern.String(q.String())
	if la, ok := wh.lookupLocal(r, key); ok {
		cp := *la
		return &cp, nil
	}
	gen, know := r.snapshot()
	out, err := wh.computeLocal(ctx, know, q)
	if err != nil {
		return nil, err
	}
	// Degraded answers are never cached: a later request with headroom (or
	// a raised budget) must be able to compute the exact answer.
	if !out.BudgetExhausted {
		r.storeLocal(gen, key, out)
	}
	cp := *out
	return &cp, nil
}

// CompleteAnswer is the result of AnswerComplete. When the source was
// reachable, Answer is the exact answer. When it was not, Degraded is set:
// Answer is the query evaluated on the locally known data — a sound lower
// approximation — and Local carries the full Theorem 3.14 picture
// (possible-answers tree and modalities) computed from the same knowledge
// snapshot, never from a cache.
type CompleteAnswer struct {
	// Answer is the exact answer, or the known-data approximation when
	// Degraded.
	Answer tree.Tree
	// LocalQueries is the number of local queries the completion needed
	// (attempted, when Degraded).
	LocalQueries int
	// Degraded reports that the source was unavailable and Answer is the
	// approximate local answer.
	Degraded bool
	// Local is the Theorem 3.14 local answer backing a degraded result.
	Local *LocalAnswer
	// Cause is the source-access error behind a degraded result (it wraps
	// faulty.ErrUnavailable).
	Cause error
	// Certificate is the completeness certificate of Answer: full on the
	// exact paths (the completion reached the source, or Corollary 3.15
	// certified the whole query), and the degraded local answer's
	// certificate otherwise. Never nil on answers built by the webhouse;
	// read-only.
	Certificate *certify.Certificate
}

// degrade falls back to the best locally-computable approximation after a
// source failure, computing it fresh from the knowledge snapshot (a stale
// cached answer must never masquerade as the degraded result).
func (wh *Webhouse) degrade(ctx context.Context, know *itree.T, q query.Query, attempted int, cause error) (*CompleteAnswer, error) {
	la, err := wh.computeLocal(ctx, know, q)
	if err != nil {
		// Not even the local fallback fit in the deadline.
		return nil, errors.Join(cause, err)
	}
	wh.degraded.Add(1)
	return &CompleteAnswer{
		Answer:       la.Exact,
		LocalQueries: attempted,
		Degraded:     true,
		Local:        la,
		Cause:        cause,
		Certificate:  la.Certificate,
	}, nil
}

// askWhole poses q itself to the source and folds the answer in — the
// completion path used when nothing is known yet, or when a Theorem 3.19
// completion came back unusable (the source's ids rotated under us).
func (wh *Webhouse) askWhole(ctx context.Context, r *Repository, client faulty.SourceClient, know *itree.T, q query.Query) (*CompleteAnswer, error) {
	endSource := obs.FromContext(ctx).Stage("source")
	a, err := client.Ask(ctx, q)
	endSource(0)
	if err != nil {
		return wh.degrade(ctx, know, q, 1, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	defer obs.FromContext(ctx).Stage("fold")(0)
	if err := wh.observeLocked(ctx, r, q, a); err != nil {
		return nil, err
	}
	r.invalidate()
	wh.journalRecord(observeEventLocked(r, q, a))
	return &CompleteAnswer{Answer: a, LocalQueries: 1, Certificate: certify.Exact(q, a)}, nil
}

// AnswerComplete answers q exactly, contacting the source only as needed:
// if q is fully answerable the local answer is returned; otherwise the
// Theorem 3.19 completion is executed against the source through the
// repository's client, folded into the repository, and the query answered
// from the enriched data. No repository lock is held during source access,
// and the context's deadline bounds the whole call. If the source is
// unavailable (outage, open breaker, retries exhausted or precluded by the
// deadline) the result degrades to the approximate local answer with
// Degraded set — graceful degradation instead of an error or a hang.
func (wh *Webhouse) AnswerComplete(ctx context.Context, source string, q query.Query) (*CompleteAnswer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	_, know := r.snapshot()
	// Unknown (budget exhausted) is treated as "not certified": the source
	// is contacted, which is always sound, merely less frugal.
	certBud := wh.newBudget(ctx)
	endCertify := obs.FromContext(ctx).Stage("certify")
	fullyV, err := answer.FullyAnswerableBudgeted(know, q, certBud)
	endCertify(certBud.Used())
	if err != nil && !errors.Is(err, budget.ErrExhausted) {
		return nil, err
	}
	if fullyV == budget.Yes {
		ans := q.Eval(know.DataTree())
		return &CompleteAnswer{Answer: ans, Certificate: certify.Exact(q, ans)}, nil
	}
	client := r.Client()
	if know.DataTree().Root == nil {
		// Nothing known: pose the query itself.
		return wh.askWhole(ctx, r, client, know, q)
	}
	ls, err := mediator.Complete(know, q)
	if err != nil {
		return nil, err
	}
	endSource := obs.FromContext(ctx).Stage("source")
	answers, err := mediator.ExecuteAllPool(ctx, wh.getPool(), client, ls)
	endSource(0)
	if err != nil {
		return wh.degrade(ctx, know, q, len(ls), err)
	}
	// Merge the fetched prefixes into the known data and answer.
	merged, err := mediator.Merge(r.Source.Doc(), know.DataTree(), answers...)
	if err != nil {
		// A node id the current document does not contain: the source's ids
		// rotated between the knowledge snapshot and now, so the completion
		// answers are unusable. Re-pose the query wholesale — always sound,
		// merely less frugal — instead of merging a corrupt prefix.
		return wh.askWhole(ctx, r, client, know, q)
	}
	result := q.Eval(merged)
	// Fold the new information into the repository as a single observation:
	// the completion answers are prefixes of the document; re-observe q with
	// its exact answer, which Refine can absorb directly (with the usual
	// recovery if the source changed between the snapshot and now).
	r.mu.Lock()
	defer r.mu.Unlock()
	defer obs.FromContext(ctx).Stage("fold")(0)
	if err := wh.observeLocked(ctx, r, q, result); err != nil {
		return nil, err
	}
	r.invalidate()
	wh.journalRecord(observeEventLocked(r, q, result))
	return &CompleteAnswer{Answer: result, LocalQueries: len(ls), Certificate: certify.Exact(q, result)}, nil
}

// Refiner exposes the repository's refinement chain (for advanced use and
// testing). Not safe against concurrent acquisition.
func (r *Repository) Refiner() *refine.Refiner {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.refiner
}
