// Package webhouse implements the paper's motivating system: an XML
// warehouse that accumulates incomplete information about remote sources by
// querying them (Section 1). Sources are simulated as in-memory documents
// with persistent node ids (the substitution for live Web sources; see
// DESIGN.md).
//
// For each source the webhouse maintains a reachable incomplete tree via
// Algorithm Refine. A user query can be answered three ways:
//
//   - locally and exactly, when Corollary 3.15 certifies the query fully
//     answerable from the data tree;
//   - locally and approximately, returning the q(T) incomplete tree of
//     possible answers (Theorem 3.14) together with certain/possible
//     information;
//   - completely, by executing a non-redundant set of local queries against
//     the source (Theorem 3.19) and merging the answers.
package webhouse

import (
	"errors"
	"fmt"

	"incxml/internal/answer"
	"incxml/internal/dtd"
	"incxml/internal/itree"
	"incxml/internal/mediator"
	"incxml/internal/query"
	"incxml/internal/refine"
	"incxml/internal/tree"
)

// Source simulates a remote XML document behind a ps-query interface with
// persistent node identifiers (Remark 2.4).
type Source struct {
	Name string
	Type *dtd.Type
	doc  tree.Tree
	// Stats
	QueriesServed int
	NodesServed   int
}

// NewSource wraps a document; it must conform to the type.
func NewSource(name string, ty *dtd.Type, doc tree.Tree) (*Source, error) {
	if err := ty.Validate(doc); err != nil {
		return nil, fmt.Errorf("webhouse: source %q: %v", name, err)
	}
	return &Source{Name: name, Type: ty, doc: doc}, nil
}

// Ask evaluates a ps-query against the full document.
func (s *Source) Ask(q query.Query) tree.Tree {
	a := q.Eval(s.doc)
	s.QueriesServed++
	s.NodesServed += a.Size()
	return a
}

// AskLocal evaluates a local query p@n.
func (s *Source) AskLocal(lq mediator.LocalQuery) tree.Tree {
	a := lq.Execute(s.doc)
	s.QueriesServed++
	s.NodesServed += a.Size()
	return a
}

// Update replaces the source document (the source changed).
func (s *Source) Update(doc tree.Tree) error {
	if err := s.Type.Validate(doc); err != nil {
		return err
	}
	s.doc = doc
	return nil
}

// Repository is the webhouse's incomplete knowledge about one source.
type Repository struct {
	Source  *Source
	refiner *refine.Refiner
}

// Webhouse is a registry of repositories.
type Webhouse struct {
	repos map[string]*Repository
}

// New creates an empty webhouse.
func New() *Webhouse { return &Webhouse{repos: map[string]*Repository{}} }

// Register adds a source, initializing its knowledge to the source's tree
// type (everything about the document itself is unknown).
func (wh *Webhouse) Register(src *Source) {
	wh.repos[src.Name] = &Repository{
		Source:  src,
		refiner: refine.NewRefiner(src.Type.Alphabet(), src.Type),
	}
}

// Repo returns the repository for a source.
func (wh *Webhouse) Repo(name string) (*Repository, error) {
	r, ok := wh.repos[name]
	if !ok {
		return nil, fmt.Errorf("webhouse: unknown source %q", name)
	}
	return r, nil
}

// Sources lists the registered source names.
func (wh *Webhouse) Sources() []string {
	out := make([]string, 0, len(wh.repos))
	for n := range wh.repos {
		out = append(out, n)
	}
	return out
}

// Explore poses a ps-query to the source and folds the answer into the
// repository (the acquisition loop of Section 3.1). When the answer
// contradicts the accumulated knowledge — the source changed under us —
// the repository is reinitialized to the source type (the paper's recovery
// strategy) and the observation is replayed against the fresh state.
func (wh *Webhouse) Explore(source string, q query.Query) (tree.Tree, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, err
	}
	a := r.Source.Ask(q)
	err = r.refiner.Observe(q, a)
	if errors.Is(err, refine.ErrInconsistent) {
		r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
		err = r.refiner.Observe(q, a)
	}
	if err != nil {
		return tree.Tree{}, err
	}
	return a, nil
}

// Knowledge returns the reachable incomplete tree for the source.
func (wh *Webhouse) Knowledge(source string) (*itree.T, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	return r.refiner.Reachable(), nil
}

// Invalidate reinitializes the knowledge about a source to its tree type
// (the paper's treatment of source updates).
func (wh *Webhouse) Invalidate(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
	return nil
}

// LocalAnswer is the result of answering a query from local knowledge only.
type LocalAnswer struct {
	// Fully reports whether the query was certified fully answerable
	// (Corollary 3.15): Exact then equals q(T) for every possible world.
	Fully bool
	// Exact is the answer computed on the data tree (meaningful when Fully).
	Exact tree.Tree
	// Possible is the incomplete tree q(T) describing all possible answers
	// (Theorem 3.14).
	Possible *itree.T
	// CertainlyNonEmpty and PossiblyNonEmpty are the Corollary 3.18
	// modalities.
	CertainlyNonEmpty bool
	PossiblyNonEmpty  bool
}

// AnswerLocally answers q from the repository without contacting the
// source.
func (wh *Webhouse) AnswerLocally(source string, q query.Query) (*LocalAnswer, error) {
	know, err := wh.Knowledge(source)
	if err != nil {
		return nil, err
	}
	out := &LocalAnswer{}
	out.Fully, err = answer.FullyAnswerable(know, q)
	if err != nil {
		return nil, err
	}
	out.Exact = q.Eval(know.DataTree())
	out.Possible, err = answer.Apply(know, q)
	if err != nil {
		return nil, err
	}
	out.CertainlyNonEmpty, err = answer.CertainlyNonEmpty(know, q)
	if err != nil {
		return nil, err
	}
	out.PossiblyNonEmpty, err = answer.PossiblyNonEmpty(know, q)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnswerComplete answers q exactly, contacting the source only as needed:
// if q is fully answerable the local answer is returned; otherwise the
// Theorem 3.19 completion is executed against the source, folded into the
// repository, and the query answered from the enriched data.
//
// The returned count is the number of local queries executed.
func (wh *Webhouse) AnswerComplete(source string, q query.Query) (tree.Tree, int, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	know := r.refiner.Reachable()
	fully, err := answer.FullyAnswerable(know, q)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	if fully {
		return q.Eval(know.DataTree()), 0, nil
	}
	if know.DataTree().Root == nil {
		// Nothing known: pose the query itself.
		a, err := wh.Explore(source, q)
		return a, 1, err
	}
	ls, err := mediator.Complete(know, q)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	answers := make([]tree.Tree, len(ls))
	for i, lq := range ls {
		answers[i] = r.Source.AskLocal(lq)
	}
	// Merge the fetched prefixes into the known data and answer.
	merged := mediator.Merge(r.Source.doc, know.DataTree(), answers...)
	result := q.Eval(merged)
	// Fold the new information into the repository as a single observation:
	// the completion answers are prefixes of the document; re-observe q with
	// its exact answer, which Refine can absorb directly.
	if err := r.refiner.Observe(q, result); err != nil {
		return tree.Tree{}, len(ls), err
	}
	return result, len(ls), nil
}

// Refiner exposes the repository's refinement chain (for advanced use and
// testing).
func (r *Repository) Refiner() *refine.Refiner { return r.refiner }
