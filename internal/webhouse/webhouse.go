// Package webhouse implements the paper's motivating system: an XML
// warehouse that accumulates incomplete information about remote sources by
// querying them (Section 1). Sources are simulated as in-memory documents
// with persistent node ids (the substitution for live Web sources; see
// DESIGN.md).
//
// For each source the webhouse maintains a reachable incomplete tree via
// Algorithm Refine. A user query can be answered three ways:
//
//   - locally and exactly, when Corollary 3.15 certifies the query fully
//     answerable from the data tree;
//   - locally and approximately, returning the q(T) incomplete tree of
//     possible answers (Theorem 3.14) together with certain/possible
//     information;
//   - completely, by executing a non-redundant set of local queries against
//     the source (Theorem 3.19) and merging the answers.
//
// The webhouse is a serving layer: all entry points are safe for concurrent
// use. Each repository guards its refinement state with an RWMutex so many
// readers (AnswerLocally, AnswerExtended, Knowledge) proceed in parallel
// while acquisition (Explore, AnswerComplete, Invalidate, Update) is
// exclusive. Local answers are cached per source under the query's canonical
// string and invalidated whenever the knowledge changes.
package webhouse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"incxml/internal/answer"
	"incxml/internal/dtd"
	"incxml/internal/engine"
	"incxml/internal/itree"
	"incxml/internal/mediator"
	"incxml/internal/query"
	"incxml/internal/refine"
	"incxml/internal/tree"
)

// Source simulates a remote XML document behind a ps-query interface with
// persistent node identifiers (Remark 2.4).
type Source struct {
	Name string
	Type *dtd.Type

	mu  sync.Mutex
	doc tree.Tree
	// Stats, guarded by mu; read them only when no query is in flight (or
	// via Served).
	QueriesServed int
	NodesServed   int
}

// NewSource wraps a document; it must conform to the type.
func NewSource(name string, ty *dtd.Type, doc tree.Tree) (*Source, error) {
	if err := ty.Validate(doc); err != nil {
		return nil, fmt.Errorf("webhouse: source %q: %v", name, err)
	}
	return &Source{Name: name, Type: ty, doc: doc}, nil
}

// Doc returns the current document. Callers must treat it as read-only.
func (s *Source) Doc() tree.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc
}

// Served reports the query and node counters under the source lock.
func (s *Source) Served() (queries, nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.QueriesServed, s.NodesServed
}

// Ask evaluates a ps-query against the full document.
func (s *Source) Ask(q query.Query) tree.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := q.Eval(s.doc)
	s.QueriesServed++
	s.NodesServed += a.Size()
	return a
}

// AskLocal evaluates a local query p@n.
func (s *Source) AskLocal(lq mediator.LocalQuery) tree.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := lq.Execute(s.doc)
	s.QueriesServed++
	s.NodesServed += a.Size()
	return a
}

// Update replaces the source document (the source changed). Prefer
// Webhouse.Update, which also drops the now-stale knowledge.
func (s *Source) Update(doc tree.Tree) error {
	if err := s.Type.Validate(doc); err != nil {
		return err
	}
	s.mu.Lock()
	s.doc = doc
	s.mu.Unlock()
	return nil
}

// Repository is the webhouse's incomplete knowledge about one source.
//
// mu guards the refiner (the knowledge); cacheMu guards the answer caches.
// Lock order is mu before cacheMu; gen is bumped on every knowledge change
// so a computation that raced with an invalidation never repopulates the
// cache with a stale answer.
type Repository struct {
	Source *Source

	mu      sync.RWMutex
	refiner *refine.Refiner

	cacheMu sync.Mutex
	gen     atomic.Uint64
	answers map[string]*LocalAnswer
	ext     map[string]*ExtendedAnswer
}

// invalidate marks the knowledge changed and drops all cached answers.
func (r *Repository) invalidate() {
	r.gen.Add(1)
	r.cacheMu.Lock()
	r.answers = map[string]*LocalAnswer{}
	r.ext = map[string]*ExtendedAnswer{}
	r.cacheMu.Unlock()
}

// Webhouse is a registry of repositories, safe for concurrent use.
type Webhouse struct {
	mu    sync.RWMutex
	repos map[string]*Repository

	pool        *engine.Pool
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// New creates an empty webhouse backed by the default worker pool.
func New() *Webhouse {
	return &Webhouse{repos: map[string]*Repository{}, pool: engine.Default()}
}

// SetPool installs the worker pool used to fan out local-answer
// sub-computations. Call before serving; nil restores the default pool.
func (wh *Webhouse) SetPool(p *engine.Pool) {
	if p == nil {
		p = engine.Default()
	}
	wh.mu.Lock()
	wh.pool = p
	wh.mu.Unlock()
}

// Register adds a source, initializing its knowledge to the source's tree
// type (everything about the document itself is unknown).
func (wh *Webhouse) Register(src *Source) {
	wh.mu.Lock()
	defer wh.mu.Unlock()
	wh.repos[src.Name] = &Repository{
		Source:  src,
		refiner: refine.NewRefiner(src.Type.Alphabet(), src.Type),
		answers: map[string]*LocalAnswer{},
		ext:     map[string]*ExtendedAnswer{},
	}
}

// Repo returns the repository for a source.
func (wh *Webhouse) Repo(name string) (*Repository, error) {
	wh.mu.RLock()
	r, ok := wh.repos[name]
	wh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("webhouse: unknown source %q", name)
	}
	return r, nil
}

// Sources lists the registered source names in sorted order. The slice is a
// copy; callers may retain it.
func (wh *Webhouse) Sources() []string {
	wh.mu.RLock()
	out := make([]string, 0, len(wh.repos))
	for n := range wh.repos {
		out = append(out, n)
	}
	wh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats aggregates the serving-layer counters: the per-source answer cache,
// the shared decision and membership caches, and the worker pool.
type Stats struct {
	// AnswerCacheHits/Misses count AnswerLocally and AnswerExtended lookups
	// served from (resp. missing) the per-source answer caches.
	AnswerCacheHits   uint64
	AnswerCacheMisses uint64
	// Decision is the answer package's decision-procedure cache.
	Decision engine.CacheStats
	// Membership is the itree membership/prefix result cache.
	Membership engine.CacheStats
	// Engine reports worker-pool utilization.
	Engine engine.Stats
}

// Stats returns a snapshot of the webhouse's serving counters.
func (wh *Webhouse) Stats() Stats {
	wh.mu.RLock()
	p := wh.pool
	wh.mu.RUnlock()
	return Stats{
		AnswerCacheHits:   wh.cacheHits.Load(),
		AnswerCacheMisses: wh.cacheMisses.Load(),
		Decision:          answer.CacheStats(),
		Membership:        itree.CacheStats(),
		Engine:            p.Stats(),
	}
}

// exploreLocked poses q to the source and folds the answer into r. The
// caller must hold r.mu for writing.
func exploreLocked(r *Repository, q query.Query) (tree.Tree, error) {
	a := r.Source.Ask(q)
	err := r.refiner.Observe(q, a)
	if errors.Is(err, refine.ErrInconsistent) {
		r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
		err = r.refiner.Observe(q, a)
	}
	if err != nil {
		return tree.Tree{}, err
	}
	return a, nil
}

// Explore poses a ps-query to the source and folds the answer into the
// repository (the acquisition loop of Section 3.1). When the answer
// contradicts the accumulated knowledge — the source changed under us —
// the repository is reinitialized to the source type (the paper's recovery
// strategy) and the observation is replayed against the fresh state.
// Cached local answers for the source are dropped.
func (wh *Webhouse) Explore(source string, q query.Query) (tree.Tree, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a, err := exploreLocked(r, q)
	if err != nil {
		return tree.Tree{}, err
	}
	r.invalidate()
	return a, nil
}

// Knowledge returns the reachable incomplete tree for the source. The
// returned tree is a snapshot: later Explore calls do not mutate it.
func (wh *Webhouse) Knowledge(source string) (*itree.T, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.refiner.Reachable(), nil
}

// Invalidate reinitializes the knowledge about a source to its tree type
// (the paper's treatment of source updates) and drops its cached answers.
func (wh *Webhouse) Invalidate(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
	r.invalidate()
	return nil
}

// Update replaces a source's document and invalidates the now-stale
// knowledge and cached answers in one step.
func (wh *Webhouse) Update(source string, doc tree.Tree) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.Source.Update(doc); err != nil {
		return err
	}
	r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
	r.invalidate()
	return nil
}

// LocalAnswer is the result of answering a query from local knowledge only.
// Instances returned by AnswerLocally may be shared between callers; treat
// them as read-only.
type LocalAnswer struct {
	// Fully reports whether the query was certified fully answerable
	// (Corollary 3.15): Exact then equals q(T) for every possible world.
	Fully bool
	// Exact is the answer computed on the data tree (meaningful when Fully).
	Exact tree.Tree
	// Possible is the incomplete tree q(T) describing all possible answers
	// (Theorem 3.14).
	Possible *itree.T
	// CertainlyNonEmpty and PossiblyNonEmpty are the Corollary 3.18
	// modalities.
	CertainlyNonEmpty bool
	PossiblyNonEmpty  bool
}

// lookupLocal consults a repository answer cache; see storeLocal for the
// staleness protocol.
func (wh *Webhouse) lookupLocal(r *Repository, key string) (*LocalAnswer, bool) {
	r.cacheMu.Lock()
	la, ok := r.answers[key]
	r.cacheMu.Unlock()
	if ok {
		wh.cacheHits.Add(1)
	} else {
		wh.cacheMisses.Add(1)
	}
	return la, ok
}

// storeLocal inserts a computed answer unless the knowledge changed since
// the computation started. invalidate bumps gen before clearing under
// cacheMu, so checking gen under cacheMu is race-free: either we observe the
// bump and skip, or our insertion happens before the clear and is removed by
// it.
func (r *Repository) storeLocal(gen uint64, key string, la *LocalAnswer) {
	r.cacheMu.Lock()
	if r.gen.Load() == gen {
		r.answers[key] = la
	}
	r.cacheMu.Unlock()
}

// AnswerLocally answers q from the repository without contacting the
// source. Repeated calls with the same query on unchanged knowledge are
// served from the per-source cache; the independent sub-answers of a miss
// are fanned out across the worker pool.
func (wh *Webhouse) AnswerLocally(source string, q query.Query) (*LocalAnswer, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	key := "ps:" + q.String()
	if la, ok := wh.lookupLocal(r, key); ok {
		cp := *la
		return &cp, nil
	}
	r.mu.RLock()
	gen := r.gen.Load()
	know := r.refiner.Reachable()
	r.mu.RUnlock()

	out := &LocalAnswer{}
	var errs [4]error
	wh.mu.RLock()
	pool := wh.pool
	wh.mu.RUnlock()
	tasks := []func(){
		func() { out.Fully, errs[0] = answer.FullyAnswerable(know, q) },
		func() { out.Exact = q.Eval(know.DataTree()) },
		func() { out.Possible, errs[1] = answer.Apply(know, q) },
		func() { out.CertainlyNonEmpty, errs[2] = answer.CertainlyNonEmpty(know, q) },
		func() { out.PossiblyNonEmpty, errs[3] = answer.PossiblyNonEmpty(know, q) },
	}
	pool.Each(context.Background(), len(tasks), func(i int) { tasks[i]() })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.storeLocal(gen, key, out)
	cp := *out
	return &cp, nil
}

// AnswerComplete answers q exactly, contacting the source only as needed:
// if q is fully answerable the local answer is returned; otherwise the
// Theorem 3.19 completion is executed against the source, folded into the
// repository, and the query answered from the enriched data.
//
// The returned count is the number of local queries executed.
func (wh *Webhouse) AnswerComplete(source string, q query.Query) (tree.Tree, int, error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	know := r.refiner.Reachable()
	fully, err := answer.FullyAnswerable(know, q)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	if fully {
		return q.Eval(know.DataTree()), 0, nil
	}
	if know.DataTree().Root == nil {
		// Nothing known: pose the query itself.
		a, err := exploreLocked(r, q)
		if err != nil {
			return tree.Tree{}, 1, err
		}
		r.invalidate()
		return a, 1, nil
	}
	ls, err := mediator.Complete(know, q)
	if err != nil {
		return tree.Tree{}, 0, err
	}
	answers := make([]tree.Tree, len(ls))
	for i, lq := range ls {
		answers[i] = r.Source.AskLocal(lq)
	}
	// Merge the fetched prefixes into the known data and answer.
	merged := mediator.Merge(r.Source.Doc(), know.DataTree(), answers...)
	result := q.Eval(merged)
	// Fold the new information into the repository as a single observation:
	// the completion answers are prefixes of the document; re-observe q with
	// its exact answer, which Refine can absorb directly.
	if err := r.refiner.Observe(q, result); err != nil {
		return tree.Tree{}, len(ls), err
	}
	r.invalidate()
	return result, len(ls), nil
}

// Refiner exposes the repository's refinement chain (for advanced use and
// testing). Not safe against concurrent acquisition.
func (r *Repository) Refiner() *refine.Refiner {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.refiner
}
