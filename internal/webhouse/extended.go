package webhouse

import (
	"context"
	"fmt"
	"strings"

	"incxml/internal/answer"
	"incxml/internal/extquery"
	"incxml/internal/intern"
	"incxml/internal/query"
	"incxml/internal/tree"
)

// ExtendedAnswer is the result of answering a Section 4 extended query
// (branching, optional subtrees, negation, joins, path expressions) against
// the locally known data.
//
// The paper's conclusion poses this coupling as future work: simple
// ps-queries feed the warehouse, while a more powerful language is asked
// locally. Because extended queries are not a strong representation system
// (Section 4), the webhouse cannot represent all their possible answers;
// instead it reports the answer over the known data together with an
// exactness verdict.
type ExtendedAnswer struct {
	// Known is the extended query's answer on the data tree T_d.
	Known tree.Tree
	// Exact reports whether Known is guaranteed to equal the answer on the
	// full document. It holds when a covering ps-query — the extended
	// pattern with branching collapsed and non-monotone features stripped —
	// is fully answerable from the warehouse (Corollary 3.15) and the
	// extended query uses no non-monotone feature (negation or optional
	// subtrees), whose verdict could flip as unseen data arrives.
	Exact bool
}

// extKey renders an extended query to a canonical cache-key string. Unlike
// ps-queries, extended queries have no parseable String form; this encoding
// is deterministic in the query value (children in pattern order) and
// injective over the features that affect the answer.
func extKey(q extquery.Query) string {
	var b strings.Builder
	b.WriteString("ext:")
	var rec func(n *extquery.Node)
	rec = func(n *extquery.Node) {
		b.WriteByte('(')
		b.WriteString(string(n.Label))
		if n.Path != nil {
			fmt.Fprintf(&b, "~%s", n.Path.String())
		}
		if !n.Cond.IsTrue() {
			fmt.Fprintf(&b, "{%s}", n.Cond)
		}
		if n.Var != "" {
			fmt.Fprintf(&b, "$%s", n.Var)
		}
		if n.Optional {
			b.WriteByte('?')
		}
		if n.Negated {
			b.WriteByte('^')
		}
		if n.Extract {
			b.WriteByte('!')
		}
		for _, c := range n.Children {
			rec(c)
		}
		b.WriteByte(')')
	}
	if q.Root != nil {
		rec(q.Root)
	}
	for _, d := range q.Diseq {
		fmt.Fprintf(&b, "[%s!=%s]", d[0], d[1])
	}
	return b.String()
}

// storeExt is storeLocal's counterpart for extended answers.
func (r *Repository) storeExt(gen uint64, key intern.ID, ea *ExtendedAnswer) {
	r.cacheMu.Lock()
	if r.gen.Load() == gen {
		r.ext[key] = ea
	}
	r.cacheMu.Unlock()
}

// AnswerExtended evaluates an extended query against the repository's data
// tree and reports whether the result is exact. Results are cached per
// source until the knowledge changes. The query runs entirely locally;
// the context's deadline is still honored between the evaluation stages.
func (wh *Webhouse) AnswerExtended(ctx context.Context, source string, q extquery.Query) (*ExtendedAnswer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	key := intern.String(extKey(q))
	r.cacheMu.Lock()
	ea, ok := r.ext[key]
	r.cacheMu.Unlock()
	if ok {
		wh.cacheHits.Add(1)
		cp := *ea
		return &cp, nil
	}
	wh.cacheMisses.Add(1)
	gen, know := r.snapshot()
	td := know.DataTree()
	out := &ExtendedAnswer{Known: q.Answer(td)}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cover, monotone := coveringPSQuery(q)
	if monotone && cover.Root != nil {
		fully, err := answer.FullyAnswerable(know, cover)
		if err != nil {
			return nil, err
		}
		out.Exact = fully
	}
	r.storeExt(gen, key, out)
	cp := *out
	return &cp, nil
}

// coveringPSQuery derives a ps-query whose answer contains every node any
// valuation of the extended query can touch, when one exists. It returns
// monotone=false when the extended query uses negation, optional subtrees,
// or path expressions (features whose answers are not determined by a
// ps-prefix), in which case no exactness claim is made.
func coveringPSQuery(q extquery.Query) (query.Query, bool) {
	if q.Root == nil {
		return query.Query{}, false
	}
	var conv func(n *extquery.Node) (*query.Node, bool)
	conv = func(n *extquery.Node) (*query.Node, bool) {
		if n.Negated || n.Optional || n.Path != nil {
			return nil, false
		}
		out := &query.Node{Label: n.Label, Extract: n.Extract}
		// Variables join across branches; the covering query drops the join
		// (conditions only), which over-approximates the touched nodes.
		out.Cond = n.Cond
		seen := map[tree.Label]*query.Node{}
		for _, c := range n.Children {
			cc, ok := conv(c)
			if !ok {
				return nil, false
			}
			if prev, dup := seen[cc.Label]; dup {
				// Branching: merge same-label siblings by weakening their
				// conditions to the disjunction and merging their subtrees;
				// if the subtrees differ structurally, give up.
				if len(prev.Children) != 0 || len(cc.Children) != 0 {
					return nil, false
				}
				prev.Cond = prev.Cond.Or(cc.Cond)
				continue
			}
			seen[cc.Label] = cc
			out.Children = append(out.Children, cc)
		}
		return out, true
	}
	root, ok := conv(q.Root)
	if !ok {
		return query.Query{}, false
	}
	out := query.Query{Root: root}
	if err := out.Validate(); err != nil {
		return query.Query{}, false
	}
	return out, true
}
