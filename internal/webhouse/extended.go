package webhouse

import (
	"incxml/internal/answer"
	"incxml/internal/extquery"
	"incxml/internal/query"
	"incxml/internal/tree"
)

// ExtendedAnswer is the result of answering a Section 4 extended query
// (branching, optional subtrees, negation, joins, path expressions) against
// the locally known data.
//
// The paper's conclusion poses this coupling as future work: simple
// ps-queries feed the warehouse, while a more powerful language is asked
// locally. Because extended queries are not a strong representation system
// (Section 4), the webhouse cannot represent all their possible answers;
// instead it reports the answer over the known data together with an
// exactness verdict.
type ExtendedAnswer struct {
	// Known is the extended query's answer on the data tree T_d.
	Known tree.Tree
	// Exact reports whether Known is guaranteed to equal the answer on the
	// full document. It holds when a covering ps-query — the extended
	// pattern with branching collapsed and non-monotone features stripped —
	// is fully answerable from the warehouse (Corollary 3.15) and the
	// extended query uses no non-monotone feature (negation or optional
	// subtrees), whose verdict could flip as unseen data arrives.
	Exact bool
}

// AnswerExtended evaluates an extended query against the repository's data
// tree and reports whether the result is exact.
func (wh *Webhouse) AnswerExtended(source string, q extquery.Query) (*ExtendedAnswer, error) {
	know, err := wh.Knowledge(source)
	if err != nil {
		return nil, err
	}
	td := know.DataTree()
	out := &ExtendedAnswer{Known: q.Answer(td)}
	cover, monotone := coveringPSQuery(q)
	if !monotone {
		return out, nil
	}
	if cover.Root == nil {
		return out, nil
	}
	fully, err := answer.FullyAnswerable(know, cover)
	if err != nil {
		return nil, err
	}
	out.Exact = fully
	return out, nil
}

// coveringPSQuery derives a ps-query whose answer contains every node any
// valuation of the extended query can touch, when one exists. It returns
// monotone=false when the extended query uses negation, optional subtrees,
// or path expressions (features whose answers are not determined by a
// ps-prefix), in which case no exactness claim is made.
func coveringPSQuery(q extquery.Query) (query.Query, bool) {
	if q.Root == nil {
		return query.Query{}, false
	}
	var conv func(n *extquery.Node) (*query.Node, bool)
	conv = func(n *extquery.Node) (*query.Node, bool) {
		if n.Negated || n.Optional || n.Path != nil {
			return nil, false
		}
		out := &query.Node{Label: n.Label, Extract: n.Extract}
		// Variables join across branches; the covering query drops the join
		// (conditions only), which over-approximates the touched nodes.
		out.Cond = n.Cond
		seen := map[tree.Label]*query.Node{}
		for _, c := range n.Children {
			cc, ok := conv(c)
			if !ok {
				return nil, false
			}
			if prev, dup := seen[cc.Label]; dup {
				// Branching: merge same-label siblings by weakening their
				// conditions to the disjunction and merging their subtrees;
				// if the subtrees differ structurally, give up.
				if len(prev.Children) != 0 || len(cc.Children) != 0 {
					return nil, false
				}
				prev.Cond = prev.Cond.Or(cc.Cond)
				continue
			}
			seen[cc.Label] = cc
			out.Children = append(out.Children, cc)
		}
		return out, true
	}
	root, ok := conv(q.Root)
	if !ok {
		return query.Query{}, false
	}
	out := query.Query{Root: root}
	if err := out.Validate(); err != nil {
		return query.Query{}, false
	}
	return out, true
}
