package webhouse

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"incxml/internal/answer"
	"incxml/internal/budget"
	"incxml/internal/certify"
	"incxml/internal/cond"
	"incxml/internal/extquery"
	"incxml/internal/intern"
	"incxml/internal/itree"
	"incxml/internal/obs"
	"incxml/internal/query"
	"incxml/internal/tree"
)

// extVerdicts counts extended-answer exactness verdicts by query class —
// the serving-side view of the Section 4 tractability boundary. Process-
// global (obs.Default()) like the other decider-verdict families.
var extVerdicts = obs.Default().NewCounterVec(
	"incxml_webhouse_ext_verdicts_total",
	"Extended-query exactness verdicts by Section 4 query class.",
	"class", "verdict")

// ExtendedAnswer is the result of answering a Section 4 extended query
// (branching, optional subtrees, negation, joins, path expressions) against
// the locally known data.
//
// The paper's conclusion poses this coupling as future work: simple
// ps-queries feed the warehouse, while a more powerful language is asked
// locally. Because extended queries are not a strong representation system
// (Section 4), the webhouse cannot represent all their possible answers;
// instead it reports the answer over the known data together with a
// three-valued exactness verdict that is never wrong when definite.
type ExtendedAnswer struct {
	// Known is the extended query's answer on the data tree T_d.
	Known tree.Tree
	// Class is the Section 4 fragment the query falls into (its most
	// expensive feature).
	Class extquery.Class
	// ExactV is the three-valued exactness verdict for Known against the
	// answer on the full document:
	//
	//   - Yes when a covering ps-query is fully answerable from the
	//     warehouse (Corollary 3.15) — or, for path-expression queries with
	//     no ps-cover, when the whole document is certified known, so
	//     rep(T) is the singleton {T_d} and any evaluation is exact;
	//   - Unknown otherwise. In particular, queries in the intractable
	//     classes (negation, joins — Theorems 4.1/4.5/4.7) always report
	//     Unknown: the decider refuses to guess where Section 4 says the
	//     question is co-NP-hard or undecidable, so a definite verdict is
	//     never wrong by construction.
	//
	// No is never reported: failing to certify exactness does not prove
	// the answer inexact.
	ExactV budget.Tri
	// Exact is ExactV == Yes, kept for v0-era callers.
	Exact bool
	// Certificate is the Corollary 3.15 completeness certificate over the
	// covering ps-query when one exists and the class is tractable; nil
	// otherwise.
	Certificate *certify.Certificate
	// BudgetExhausted reports that the step budget ran out mid-evaluation:
	// Known may be empty and ExactV is Unknown. Such answers are degraded,
	// never cached, and never claimed exact.
	BudgetExhausted bool
}

// extKey renders an extended query to a canonical cache-key string. Unlike
// ps-queries, extended queries have no parseable String form; this encoding
// is deterministic in the query value (children in pattern order) and
// injective over the features that affect the answer.
func extKey(q extquery.Query) string {
	var b strings.Builder
	b.WriteString("ext:")
	var rec func(n *extquery.Node)
	rec = func(n *extquery.Node) {
		b.WriteByte('(')
		b.WriteString(string(n.Label))
		if n.Path != nil {
			fmt.Fprintf(&b, "~%s", n.Path.String())
		}
		if !n.Cond.IsTrue() {
			fmt.Fprintf(&b, "{%s}", n.Cond)
		}
		if n.Var != "" {
			fmt.Fprintf(&b, "$%s", n.Var)
		}
		if n.Optional {
			b.WriteByte('?')
		}
		if n.Negated {
			b.WriteByte('^')
		}
		if n.Extract {
			b.WriteByte('!')
		}
		for _, c := range n.Children {
			rec(c)
		}
		b.WriteByte(')')
	}
	if q.Root != nil {
		rec(q.Root)
	}
	for _, d := range q.Diseq {
		fmt.Fprintf(&b, "[%s!=%s]", d[0], d[1])
	}
	return b.String()
}

// storeExt is storeLocal's counterpart for extended answers.
func (r *Repository) storeExt(gen uint64, key intern.ID, ea *ExtendedAnswer) {
	r.cacheMu.Lock()
	if r.gen.Load() == gen {
		r.ext[key] = ea
	}
	r.cacheMu.Unlock()
}

// AnswerExtended evaluates an extended query against the repository's data
// tree under the webhouse's cooperative budget and reports a three-valued
// exactness verdict. Results are cached per source until the knowledge
// changes; budget-degraded answers are never cached. Deadline exhaustion
// surfaces as an error (the serving layer maps it to a timeout); step
// exhaustion degrades soundly to an Unknown-verdict answer.
func (wh *Webhouse) AnswerExtended(ctx context.Context, source string, q extquery.Query) (*ExtendedAnswer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := wh.Repo(source)
	if err != nil {
		return nil, err
	}
	key := intern.String(extKey(q))
	r.cacheMu.Lock()
	ea, ok := r.ext[key]
	r.cacheMu.Unlock()
	if ok {
		wh.cacheHits.Add(1)
		cp := *ea
		return &cp, nil
	}
	wh.cacheMisses.Add(1)
	gen, know := r.snapshot()
	td := know.DataTree()

	bud := wh.newBudget(ctx)
	endStage := obs.FromContext(ctx).Stage("extended")
	defer func() {
		used := bud.Used()
		stepsUsed.Observe(used)
		endStage(used)
	}()

	out := &ExtendedAnswer{Class: q.Classify(), ExactV: budget.Unknown}
	out.Known, err = q.AnswerBudgeted(td, bud)
	if err != nil {
		if !errors.Is(err, budget.ErrExhausted) {
			return nil, err
		}
		wh.budgetExhaustions.Add(1)
		if bud.ExhaustedCause() == budget.CauseDeadline {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, bud.Err()
		}
		// Step exhaustion: degrade soundly. The partial valuation set was
		// discarded (it would under-report); serve an explicitly degraded
		// empty answer with an Unknown verdict, uncached.
		out.BudgetExhausted = true
		extVerdicts.With(out.Class.String(), out.ExactV.String()).Inc()
		return out, nil
	}

	if out.Class.Tractable() {
		if err := wh.certifyExtended(ctx, know, q, out, bud); err != nil {
			return nil, err
		}
	}
	out.Exact = out.ExactV == budget.Yes
	extVerdicts.With(out.Class.String(), out.ExactV.String()).Inc()
	if !out.BudgetExhausted {
		r.storeExt(gen, key, out)
	}
	cp := *out
	return &cp, nil
}

// certifyExtended resolves the exactness verdict for a tractable-class
// query: through the covering ps-query when one exists, else — for
// path-expression and optional-subtree queries — through the whole-document
// cover (a root-bar query): if every completion agrees on the full
// document, rep(T) = {T_d} and any evaluation over T_d is exact.
func (wh *Webhouse) certifyExtended(ctx context.Context, know *itree.T, q extquery.Query, out *ExtendedAnswer, bud *budget.B) error {
	cover, monotone := coveringPSQuery(q)
	if !monotone || cover.Root == nil {
		td := know.DataTree()
		if td.Root == nil {
			return nil
		}
		cover = query.Query{Root: query.Bar(td.Root.Label, cond.True())}
	}
	fully, err := answer.FullyAnswerableBudgeted(know, cover, bud)
	if err != nil {
		if !errors.Is(err, budget.ErrExhausted) {
			return err
		}
		wh.budgetExhaustions.Add(1)
		if bud.ExhaustedCause() == budget.CauseDeadline {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return bud.Err()
		}
		out.BudgetExhausted = true
		return nil
	}
	if fully == budget.Yes {
		out.ExactV = budget.Yes
		// Certificate under its own bounded budget, as for local answers:
		// exhausting the request budget must not erase the certificate.
		out.Certificate = certify.Compute(know, cover,
			budget.New(ctx, certifySteps(wh.effectiveSteps(ctx))))
	}
	return nil
}

// coveringPSQuery derives a ps-query whose answer contains every node any
// valuation of the extended query can touch, when one exists. It returns
// monotone=false when the extended query uses negation, optional subtrees,
// or path expressions (features whose answers are not determined by a
// ps-prefix), in which case no exactness claim is made.
func coveringPSQuery(q extquery.Query) (query.Query, bool) {
	if q.Root == nil {
		return query.Query{}, false
	}
	var conv func(n *extquery.Node) (*query.Node, bool)
	conv = func(n *extquery.Node) (*query.Node, bool) {
		if n.Negated || n.Optional || n.Path != nil {
			return nil, false
		}
		out := &query.Node{Label: n.Label, Extract: n.Extract}
		// Variables join across branches; the covering query drops the join
		// (conditions only), which over-approximates the touched nodes.
		out.Cond = n.Cond
		seen := map[tree.Label]*query.Node{}
		for _, c := range n.Children {
			cc, ok := conv(c)
			if !ok {
				return nil, false
			}
			if prev, dup := seen[cc.Label]; dup {
				// Branching: merge same-label siblings by weakening their
				// conditions to the disjunction and merging their subtrees;
				// if the subtrees differ structurally, give up.
				if len(prev.Children) != 0 || len(cc.Children) != 0 {
					return nil, false
				}
				prev.Cond = prev.Cond.Or(cc.Cond)
				continue
			}
			seen[cc.Label] = cc
			out.Children = append(out.Children, cc)
		}
		return out, true
	}
	root, ok := conv(q.Root)
	if !ok {
		return query.Query{}, false
	}
	out := query.Query{Root: root}
	if err := out.Validate(); err != nil {
		return query.Query{}, false
	}
	return out, true
}
