package webhouse

import (
	"incxml/internal/faulty"
	"incxml/internal/obs"
)

// stepsUsed is a process-wide histogram of the budget steps one local
// computation charged before finishing (or exhausting). Read together with
// `incxml_budget_exhausted_total`: the histogram says how close typical
// requests run to the -budget allowance, the counter says how many fell off
// the edge.
var stepsUsed = obs.Default().NewHistogram(
	"incxml_webhouse_budget_steps_used",
	"Budget steps charged per local computation (log2 buckets).")

// breakerOpen is implemented by clients exposing live breaker state
// (faulty.RetryClient).
type breakerOpen interface{ BreakerOpen() bool }

// sourceStats aggregates the reliability counters of every repository whose
// client tracks them (the Source field of Stats).
func (wh *Webhouse) sourceStats() faulty.ClientStats {
	wh.mu.RLock()
	repos := make([]*Repository, 0, len(wh.repos))
	for _, r := range wh.repos {
		repos = append(repos, r)
	}
	wh.mu.RUnlock()
	var src faulty.ClientStats
	for _, r := range repos {
		if cs, ok := r.Client().(clientStats); ok {
			src.Add(cs.Stats())
		}
	}
	return src
}

// ExposeMetrics registers this webhouse's serving counters on reg as
// func-backed, scrape-time views over the same atomics Stats() reads — by
// construction /stats and /metrics can never disagree. Per-source children
// (cache generation, live breaker state) are registered for the sources
// known at call time, so expose after Register-ing the fleet. Metrics are
// per-webhouse: expose each instance on its own registry (the serving layer
// does this) and keep the process-global families — engine pool, shared
// caches, decider verdicts — on obs.Default(), which the instance registry
// Includes.
func (wh *Webhouse) ExposeMetrics(reg *obs.Registry) {
	reg.CounterFunc("incxml_webhouse_answer_cache_hits_total",
		"Local/extended answers served from the per-source answer caches.",
		wh.cacheHits.Load)
	reg.CounterFunc("incxml_webhouse_answer_cache_misses_total",
		"Local/extended answer lookups that missed the per-source caches.",
		wh.cacheMisses.Load)
	reg.CounterFunc("incxml_webhouse_degraded_answers_total",
		"AnswerComplete calls that fell back to the approximate local answer (source unavailable).",
		wh.degraded.Load)
	reg.CounterFunc("incxml_webhouse_budget_exhaustions_total",
		"Local computations whose step or deadline budget ran out.",
		wh.budgetExhaustions.Load)
	reg.CounterFunc("incxml_webhouse_lossy_fallbacks_total",
		"Computations recovered through the Proposition 3.13 lossy-shrinking fallback.",
		wh.lossyFallbacks.Load)

	reg.CounterFunc("incxml_source_attempts_total",
		"Source calls forwarded to the wrapped clients (all sources).",
		func() uint64 { return wh.sourceStats().Attempts })
	reg.CounterFunc("incxml_source_retries_total",
		"Source-call attempts beyond the first (all sources).",
		func() uint64 { return wh.sourceStats().Retries })
	reg.CounterFunc("incxml_source_failures_total",
		"Source calls that failed after all retries (all sources).",
		func() uint64 { return wh.sourceStats().Failures })
	reg.CounterFunc("incxml_source_breaker_opens_total",
		"Circuit-breaker closed/half-open to open transitions (all sources).",
		func() uint64 { return wh.sourceStats().BreakerOpens })
	reg.CounterFunc("incxml_source_rejections_total",
		"Source calls rejected outright by an open breaker (all sources).",
		func() uint64 { return wh.sourceStats().Rejections })

	wh.ExposeSourceMetrics(reg)
}

// ExposeSourceMetrics registers only the per-source labeled children
// (cache generation, live breaker state) on reg. Because label values are
// source names and webhouses in one process own disjoint source sets, a
// sharded cluster can call this for each of its webhouses on one shared
// registry — unlike ExposeMetrics, whose unlabeled func-backed totals are
// per-webhouse and would silently shadow each other (first registration
// wins in obs).
func (wh *Webhouse) ExposeSourceMetrics(reg *obs.Registry) {
	gen := reg.NewGaugeVec("incxml_webhouse_cache_generation",
		"Answer-cache generation of a source's repository (bumps on every knowledge change).",
		"source")
	brk := reg.NewGaugeVec("incxml_source_breaker_open",
		"1 while a source's circuit breaker is open or half-open, 0 when closed.",
		"source")
	for _, name := range wh.Sources() {
		r, err := wh.Repo(name)
		if err != nil {
			continue
		}
		gen.Func(func() float64 { return float64(r.gen.Load()) }, name)
		brk.Func(func() float64 {
			if bo, ok := r.Client().(breakerOpen); ok && bo.BreakerOpen() {
				return 1
			}
			return 0
		}, name)
	}
}
