package webhouse

import (
	"context"
	"testing"

	"incxml/internal/rat"
	"incxml/internal/tree"
	"incxml/internal/workload"
)

func newCatalogWebhouse(t *testing.T) (*Webhouse, *Source) {
	t.Helper()
	src, err := NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	wh := New()
	wh.Register(src)
	return wh, src
}

func TestRegisterAndSources(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	if got := wh.Sources(); len(got) != 1 || got[0] != "catalog" {
		t.Errorf("Sources = %v", got)
	}
	if _, err := wh.Repo("nope"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := NewSource("bad", workload.CatalogType(), tree.Empty()); err == nil {
		t.Error("nonconforming source accepted")
	}
}

func TestExploreAndKnowledge(t *testing.T) {
	wh, src := newCatalogWebhouse(t)
	a, err := wh.Explore(context.Background(), "catalog", workload.Query1(200))
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := src.Served()
	if a.IsEmpty() || queries != 1 {
		t.Error("exploration did not reach the source")
	}
	know, err := wh.Knowledge("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if !know.Member(workload.PaperCatalog()) {
		t.Error("true document excluded from knowledge")
	}
	td := know.DataTree()
	if td.Find("canon") == nil {
		t.Error("explored product missing from data tree")
	}
}

// The Example 3.4 session: after Queries 1 and 2, Query 3 answers locally
// and Query 4 needs completion.
func TestExample34Session(t *testing.T) {
	wh, src := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query2()); err != nil {
		t.Fatal(err)
	}
	served, _ := src.Served()

	// Query 3: fully answerable locally.
	la, err := wh.AnswerLocally(context.Background(), "catalog", workload.Query3(100))
	if err != nil {
		t.Fatal(err)
	}
	if !la.Fully {
		t.Error("Query 3 should be fully answerable (Example 3.4)")
	}
	if nowServed, _ := src.Served(); nowServed != served {
		t.Error("local answering contacted the source")
	}

	// Query 4: not fully answerable; local modalities are still available.
	la4, err := wh.AnswerLocally(context.Background(), "catalog", workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if la4.Fully {
		t.Error("Query 4 should not be fully answerable")
	}
	if !la4.CertainlyNonEmpty {
		t.Error("Query 4 certainly has answers (known cameras exist)")
	}
	// The partial local answer lists the known cameras.
	ids := la4.Exact.IDs()
	if !ids["canon"] || !ids["nikon"] || !ids["olympus"] {
		t.Error("local partial answer missing known cameras")
	}

	// Completing Query 4 contacts the source with local queries and returns
	// the exact answer.
	ca, err := wh.AnswerComplete(context.Background(), "catalog", workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if ca.LocalQueries == 0 {
		t.Error("completion should have needed source access")
	}
	if ca.Degraded {
		t.Error("completion against a healthy source degraded")
	}
	want := workload.Query4().Eval(workload.PaperCatalog())
	if !ca.Answer.Equal(want) {
		t.Errorf("completed answer wrong:\n%s\nwant:\n%s", ca.Answer, want)
	}
}

func TestAnswerCompleteOnColdCache(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	ca, err := wh.AnswerComplete(context.Background(), "catalog", workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if ca.LocalQueries != 1 {
		t.Errorf("cold cache should pose exactly the query itself, asked %d", ca.LocalQueries)
	}
	want := workload.Query4().Eval(workload.PaperCatalog())
	if !ca.Answer.Equal(want) {
		t.Error("cold-cache answer wrong")
	}
}

func TestAnswerCompleteFindsHiddenProduct(t *testing.T) {
	// A product invisible to queries 1-2 must be fetched by the completion.
	doc := workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 120, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "leica", Name: 17, Price: 999, Subcat: workload.ValCamera},
	})
	src, err := NewSource("catalog", workload.CatalogType(), doc)
	if err != nil {
		t.Fatal(err)
	}
	wh := New()
	wh.Register(src)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query2()); err != nil {
		t.Fatal(err)
	}
	ca, err := wh.AnswerComplete(context.Background(), "catalog", workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if ca.Answer.Find("leica") == nil {
		t.Errorf("hidden camera not retrieved:\n%s", ca.Answer)
	}
	// After completion the knowledge includes the new camera.
	know, _ := wh.Knowledge("catalog")
	if know.DataTree().Find("leica") == nil {
		t.Error("completion result not folded into the repository")
	}
}

func TestInvalidate(t *testing.T) {
	wh, src := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	// The source changes: drop a product and bump a price.
	newDoc := workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 130, Subcat: workload.ValCamera},
	})
	if err := src.Update(newDoc); err != nil {
		t.Fatal(err)
	}
	if err := wh.Invalidate("catalog"); err != nil {
		t.Fatal(err)
	}
	know, _ := wh.Knowledge("catalog")
	if know.DataTree().Root != nil {
		t.Error("invalidate kept stale data")
	}
	if !know.Member(newDoc) {
		t.Error("reinitialized knowledge excludes the new document")
	}
	// Fresh exploration works against the new document.
	a, err := wh.Explore(context.Background(), "catalog", workload.Query1(200))
	if err != nil {
		t.Fatal(err)
	}
	if a.Find("canon.price") == nil || !a.Find("canon.price").Value.Equal(rat.FromInt(130)) {
		t.Error("post-update exploration returned stale price")
	}
}

func TestSourceUpdateValidation(t *testing.T) {
	_, src := newCatalogWebhouse(t)
	if err := src.Update(tree.Empty()); err == nil {
		t.Error("invalid update accepted")
	}
}

func TestExploreRecoversFromSourceChange(t *testing.T) {
	// The source changes between queries WITHOUT the webhouse being told:
	// the new answers contradict the accumulated knowledge and exploration
	// must transparently reinitialize (the paper's recovery strategy).
	wh, src := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	// Change Canon's price to 180 (still under 200, same node ids): the next
	// Query1 answer reports a different value for a known node.
	changed := workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 180, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "nikon", Name: 11, Price: 199, Subcat: workload.ValCamera},
	})
	if err := src.Update(changed); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatalf("exploration after source change failed: %v", err)
	}
	know, err := wh.Knowledge("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if !know.Member(changed) {
		t.Error("knowledge excludes the new document after recovery")
	}
	price := know.DataTree().Find("canon.price")
	if price == nil || !price.Value.Equal(rat.FromInt(180)) {
		t.Error("stale price survived the recovery")
	}
}

func TestObserveInconsistencyKeepsState(t *testing.T) {
	// At the refiner level the inconsistent observation is rejected and the
	// previous state preserved.
	wh, _ := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	r, _ := wh.Repo("catalog")
	before, _ := r.Source.Served()
	_ = before
	know1, _ := wh.Knowledge("catalog")
	size1 := know1.Size()
	// Feed a contradictory answer by hand: Canon at a different price.
	badAnswer := workload.Query1(200).Eval(workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 130, Subcat: workload.ValCamera},
	}))
	err := r.Refiner().Observe(workload.Query1(200), badAnswer)
	if err == nil {
		t.Fatal("contradictory observation accepted")
	}
	know2, _ := wh.Knowledge("catalog")
	if know2.Size() != size1 {
		t.Error("failed observation mutated the knowledge")
	}
}
