package webhouse

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"incxml/internal/cond"
	"incxml/internal/extquery"
	"incxml/internal/workload"
)

// TestAnswerCacheHitAndEviction checks the acceptance criterion directly:
// a repeated AnswerLocally on an unchanged source is an observable cache
// hit, and each of Explore, Update and Invalidate evicts.
func TestAnswerCacheHitAndEviction(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	q := workload.Query3(100)

	ask := func() Stats {
		t.Helper()
		if _, err := wh.AnswerLocally(context.Background(), "catalog", q); err != nil {
			t.Fatal(err)
		}
		return wh.Stats()
	}

	s1 := ask()
	s2 := ask()
	if s2.AnswerCacheHits != s1.AnswerCacheHits+1 {
		t.Fatalf("repeat AnswerLocally not a cache hit: %+v -> %+v", s1, s2)
	}

	evictors := []struct {
		name string
		run  func() error
	}{
		{"Explore", func() error {
			_, err := wh.Explore(context.Background(), "catalog", workload.Query2())
			return err
		}},
		{"Invalidate", func() error { return wh.Invalidate("catalog") }},
		{"Update", func() error {
			return wh.Update("catalog", workload.PaperCatalog())
		}},
	}
	for _, ev := range evictors {
		ask() // warm
		before := ask()
		if err := ev.run(); err != nil {
			t.Fatalf("%s: %v", ev.name, err)
		}
		after := ask()
		if after.AnswerCacheMisses != before.AnswerCacheMisses+1 {
			t.Errorf("%s did not evict the answer cache: %+v -> %+v",
				ev.name, before, after)
		}
	}
}

func TestAnswerExtendedCached(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	q := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True()))}
	if _, err := wh.AnswerExtended(context.Background(), "catalog", q); err != nil {
		t.Fatal(err)
	}
	before := wh.Stats()
	a1, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	after := wh.Stats()
	if after.AnswerCacheHits != before.AnswerCacheHits+1 {
		t.Fatalf("repeat AnswerExtended not a cache hit: %+v -> %+v", before, after)
	}
	if err := wh.Invalidate("catalog"); err != nil {
		t.Fatal(err)
	}
	a2, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	// After invalidation the knowledge is the bare type: the answer shrinks.
	if a1.Known.Size() != 0 && a2.Known.Size() == a1.Known.Size() && wh.Stats().AnswerCacheMisses == after.AnswerCacheMisses {
		t.Error("Invalidate did not evict the extended-answer cache")
	}
}

// TestConcurrentServing hammers one webhouse from many goroutines mixing
// reads (AnswerLocally, AnswerExtended, Knowledge, Sources) with writes
// (Explore, Invalidate, Update). Run under -race this is the serving
// layer's thread-safety proof; without -race it still checks that answers
// remain well-formed under contention.
func TestConcurrentServing(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	queries := []func() error{
		func() error {
			_, err := wh.AnswerLocally(context.Background(), "catalog", workload.Query3(100))
			return err
		},
		func() error {
			_, err := wh.AnswerLocally(context.Background(), "catalog", workload.Query1(150))
			return err
		},
		func() error {
			q := extquery.Query{Root: extquery.N("catalog", cond.True())}
			_, err := wh.AnswerExtended(context.Background(), "catalog", q)
			return err
		},
		func() error {
			_, err := wh.Knowledge("catalog")
			return err
		},
		func() error {
			if got := wh.Sources(); len(got) != 1 {
				return fmt.Errorf("Sources = %v", got)
			}
			return nil
		},
		func() error {
			_, err := wh.Explore(context.Background(), "catalog", workload.Query2())
			return err
		},
		func() error { return wh.Invalidate("catalog") },
		func() error {
			return wh.Update("catalog", workload.PaperCatalog())
		},
		func() error {
			_, err := wh.AnswerComplete(context.Background(), "catalog", workload.Query3(100))
			return err
		},
	}
	const goroutines = 12
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := queries[(g+i)%len(queries)](); err != nil {
					errc <- fmt.Errorf("goroutine %d round %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The answers must still be correct after the storm.
	if err := wh.Invalidate("catalog"); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	la, err := wh.AnswerLocally(context.Background(), "catalog", workload.Query3(100))
	if err != nil {
		t.Fatal(err)
	}
	if !la.Fully {
		t.Error("Query 3 no longer fully answerable after concurrent storm")
	}
}
