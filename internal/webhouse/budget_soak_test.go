package webhouse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"incxml/internal/answer"
	"incxml/internal/budget"
	"incxml/internal/itree"
	"incxml/internal/query"
	"incxml/internal/workload"
)

// soakFixture builds a webhouse with the catalog and Example 3.2 blowup
// sources and a fixed, exactly-refined knowledge state (no budget during
// acquisition, so every instance is bit-identical).
func soakFixture(t *testing.T) *Webhouse {
	t.Helper()
	ctx := context.Background()
	wh := New()
	cat, err := NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	blow, err := NewSource("blowup", workload.BlowupType(), workload.BlowupWorld())
	if err != nil {
		t.Fatal(err)
	}
	wh.Register(cat)
	wh.Register(blow)
	for _, q := range []query.Query{workload.Query1(200), workload.Query2()} {
		if _, err := wh.Explore(ctx, "catalog", q); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 4; i++ {
		if _, err := wh.Explore(ctx, "blowup", workload.BlowupQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	return wh
}

// TestBudgetedAnswersSoundUnderConcurrentLoad is the soundness half of the
// soak: a starved webhouse hammered by concurrent local queries may answer
// Unknown, but whenever a three-valued facet is Known it agrees with the
// verdict of an identical, unbudgeted webhouse. Run under -race via
// scripts/verify.sh.
func TestBudgetedAnswersSoundUnderConcurrentLoad(t *testing.T) {
	ctx := context.Background()
	oracleWh := soakFixture(t)
	wh := soakFixture(t)

	type testQuery struct {
		src string
		q   query.Query
	}
	queries := []testQuery{
		{"catalog", workload.Query1(100)},
		{"catalog", workload.Query3(100)},
		{"catalog", workload.Query4()},
		{"blowup", workload.BlowupQuery(2)},
		{"blowup", workload.BlowupQuery(5)},
	}
	oracle := make([]*LocalAnswer, len(queries))
	for i, tq := range queries {
		la, err := oracleWh.AnswerLocally(ctx, tq.src, tq.q)
		if err != nil {
			t.Fatalf("oracle %s/%d: %v", tq.src, i, err)
		}
		if !la.FullyV.Known() || !la.CertainlyNonEmptyV.Known() || !la.PossiblyNonEmptyV.Known() {
			t.Fatalf("oracle %s/%d returned a non-exact verdict", tq.src, i)
		}
		oracle[i] = la
	}

	// Starve the instance under test and drop the process-global decision
	// cache so the storm actually recomputes under the budget (cached
	// verdicts from the oracle would short-circuit it).
	wh.SetBudget(200)
	answer.ResetCache()
	itree.ResetCache()

	check := func(name string, got budget.Tri, want budget.Tri) error {
		if got.Known() && got != want {
			return fmt.Errorf("%s: budgeted verdict %v, oracle %v", name, got, want)
		}
		return nil
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 6; rep++ {
				for i, tq := range queries {
					cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
					la, err := wh.AnswerLocally(cctx, tq.src, tq.q)
					cancel()
					if err != nil {
						if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, budget.ErrExhausted) {
							continue
						}
						errCh <- fmt.Errorf("%s/%d: %v", tq.src, i, err)
						continue
					}
					o := oracle[i]
					for _, e := range []error{
						check(fmt.Sprintf("%s/%d fully", tq.src, i), la.FullyV, o.FullyV),
						check(fmt.Sprintf("%s/%d certainlyNonEmpty", tq.src, i), la.CertainlyNonEmptyV, o.CertainlyNonEmptyV),
						check(fmt.Sprintf("%s/%d possiblyNonEmpty", tq.src, i), la.PossiblyNonEmptyV, o.PossiblyNonEmptyV),
					} {
						if e != nil {
							errCh <- e
						}
					}
					if !la.BudgetExhausted &&
						(!la.FullyV.Known() || !la.CertainlyNonEmptyV.Known() || !la.PossiblyNonEmptyV.Known()) {
						errCh <- fmt.Errorf("%s/%d: Unknown facet without budget exhaustion", tq.src, i)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	seen := 0
	for e := range errCh {
		if seen < 10 {
			t.Error(e)
		}
		seen++
	}
	if seen > 10 {
		t.Errorf("... and %d more", seen-10)
	}
	// The budgeted path must actually be exercised — whether the storm
	// itself exhausted the 200-step budget depends on how the goroutines
	// split the cold decision computations across the shared decision
	// cache, so force one deterministic exhaustion: BlowupQuery(5) is
	// unrefuted (its possible-answer construction materializes ~65 answer
	// symbols, and q(T) construction is never memoized), so with a 1-step
	// budget and the repository's answer cache dropped it cannot complete.
	wh.SetBudget(1)
	answer.ResetCache()
	itree.ResetCache()
	r, err := wh.Repo("blowup")
	if err != nil {
		t.Fatal(err)
	}
	r.invalidate()
	if _, err := wh.AnswerLocally(ctx, "blowup", workload.BlowupQuery(5)); err != nil && !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("forced-exhaustion query: %v", err)
	}
	if st := wh.Stats(); st.BudgetExhaustions == 0 {
		t.Error("budget exhaustion was never recorded")
	}
}
