package webhouse

import (
	"errors"
	"sort"
	"sync"

	"incxml/internal/itree"
	"incxml/internal/query"
	"incxml/internal/refine"
	"incxml/internal/tree"
)

// EventKind identifies one acquisition mutation for the durability journal.
type EventKind int

// The three mutation shapes of the acquisition loop. Explore and the two
// AnswerComplete fold paths all reduce to EventObserve (a ps-query/answer
// pair folded by Algorithm Refine); Invalidate and Update are knowledge
// resets, the latter carrying the replacement document.
const (
	EventObserve EventKind = iota + 1
	EventInvalidate
	EventUpdate
	// EventRestore is a wholesale knowledge install (RestoreKnowledge
	// outside recovery — e.g. a rebalancing import): the journal must
	// persist the full post-state, there is no observation to replay.
	EventRestore
)

// JournalEvent describes one applied mutation. It is emitted while the
// repository's write lock is still held, so for any one source events
// arrive in exactly the order the mutations were applied.
//
// The event carries both the replayable inputs (Query/Answer, Doc) and the
// resulting state (Knowledge/Steps/Lossy, snapshotted after the fold) so a
// journal can choose per event between logging the compact input — exact
// replay re-derives the state, valid while the chain is non-lossy — and
// logging the full post-state, required once a lossy fold made the chain
// depend on budget timing that replay cannot reproduce. Knowledge is the
// refiner's current tree; it is immutable once emitted (folds replace the
// pointer, never mutate in place), so journals may retain it without
// copying.
type JournalEvent struct {
	Kind   EventKind
	Source string

	// Query and Answer are the folded observation (EventObserve).
	Query  query.Query
	Answer tree.Tree

	// Doc is the replacement document (EventUpdate).
	Doc tree.Tree

	// Knowledge, Steps and Lossy snapshot the refiner state after the
	// mutation (all kinds).
	Knowledge *itree.T
	Steps     int
	Lossy     bool
}

// Journal receives every applied acquisition mutation. Record is called
// with the repository write lock held: implementations must not call back
// into the webhouse (or any Repository method) and should return quickly —
// buffered appends, not fsyncs. The durability layer (internal/store)
// implements this.
type Journal interface {
	Record(ev JournalEvent)
}

// SetJournal installs the acquisition journal; nil detaches it. Install
// before serving traffic: mutations applied while no journal is attached
// are not re-emitted later.
func (wh *Webhouse) SetJournal(j Journal) {
	wh.journalMu.Lock()
	wh.journal = j
	wh.journalMu.Unlock()
}

// journalRecord emits ev to the attached journal, if any. Callers hold the
// repository write lock, keeping the per-source event order identical to
// the mutation order.
func (wh *Webhouse) journalRecord(ev JournalEvent) {
	wh.journalMu.RLock()
	j := wh.journal
	wh.journalMu.RUnlock()
	if j != nil {
		j.Record(ev)
	}
}

// observeEventLocked builds the journal event for an observation folded
// into r. Caller holds r.mu for writing.
func observeEventLocked(r *Repository, q query.Query, a tree.Tree) JournalEvent {
	return JournalEvent{
		Kind:      EventObserve,
		Source:    r.Source.Name,
		Query:     q,
		Answer:    a,
		Knowledge: r.refiner.Tree(),
		Steps:     r.refiner.Steps(),
		Lossy:     r.refiner.Lossy(),
	}
}

// Export snapshots a repository's durable state consistently: the current
// source document, the refiner's accumulated tree (not the reachable
// intersection, which is derived), the observation count, and the lossy
// flag. The returned trees are immutable snapshots.
func (wh *Webhouse) Export(source string) (doc tree.Tree, knowledge *itree.T, steps int, lossy bool, err error) {
	r, err := wh.Repo(source)
	if err != nil {
		return tree.Tree{}, nil, 0, false, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.Source.Doc(), r.refiner.Tree(), r.refiner.Steps(), r.refiner.Lossy(), nil
}

// ReplayObserve folds a journaled observation during recovery, without a
// budget (replay must be exact: live non-lossy folds are exact too, so the
// replayed chain reproduces the pre-crash state byte for byte) and without
// re-journaling. The inconsistency recovery matches the live path: a
// contradicting observation reinitializes the knowledge and is folded
// against the fresh state.
func (wh *Webhouse) ReplayObserve(source string, q query.Query, a tree.Tree) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err = r.refiner.ObserveBudgeted(q, a, nil, wh.shrinkCap())
	if errors.Is(err, refine.ErrInconsistent) {
		r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
		_, err = r.refiner.ObserveBudgeted(q, a, nil, wh.shrinkCap())
	}
	if err != nil {
		return err
	}
	r.invalidate()
	return nil
}

// RestoreKnowledge installs a decoded knowledge state — a snapshot, a WAL
// State record, or a rebalancing import — exactly as the originating chain
// stood. A nil knowledge restores the pristine post-Register state. The
// install is journaled as an EventRestore so an import survives a later
// crash; during recovery no journal is attached yet, so replay does not
// re-journal itself.
func (wh *Webhouse) RestoreKnowledge(source string, knowledge *itree.T, steps int, lossy bool) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refiner = refine.RestoreRefiner(r.Source.Type.Alphabet(), r.Source.Type, knowledge, steps, lossy)
	r.invalidate()
	wh.journalRecord(JournalEvent{
		Kind:      EventRestore,
		Source:    r.Source.Name,
		Knowledge: r.refiner.Tree(),
		Steps:     steps,
		Lossy:     lossy,
	})
	return nil
}

// ReplayInvalidate is Invalidate without re-journaling, for recovery.
func (wh *Webhouse) ReplayInvalidate(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetLocked()
	return nil
}

// ReplayUpdate is Update without re-journaling, for recovery. The
// replacement document is validated against the source type exactly as a
// live Update would; a validation failure tells the recovery layer the
// persisted document no longer matches the registered source.
func (wh *Webhouse) ReplayUpdate(source string, doc tree.Tree) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.Source.Update(doc); err != nil {
		return err
	}
	r.resetLocked()
	return nil
}

// resetLocked reinitializes the knowledge to the source type and drops
// cached answers. Caller holds r.mu for writing.
func (r *Repository) resetLocked() {
	r.refiner = refine.NewRefiner(r.Source.Type.Alphabet(), r.Source.Type)
	r.invalidate()
}

// Quarantine marks a repository unrecoverable: its knowledge is reset to
// the pristine source-type state and every answer is computed from that
// empty knowledge — sound but maximally approximate, the Theorem 3.14
// degraded mode — instead of the process refusing to start. The flag stays
// set until ClearQuarantine.
func (wh *Webhouse) Quarantine(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.resetLocked()
	r.mu.Unlock()
	r.quarantined.Store(true)
	return nil
}

// ClearQuarantine lifts the quarantine flag (the knowledge stays as is —
// typically pristine, to be re-acquired by live traffic).
func (wh *Webhouse) ClearQuarantine(source string) error {
	r, err := wh.Repo(source)
	if err != nil {
		return err
	}
	r.quarantined.Store(false)
	return nil
}

// Quarantined reports whether recovery quarantined this repository.
func (r *Repository) Quarantined() bool { return r.quarantined.Load() }

// QuarantinedSources lists the sources recovery quarantined, sorted.
func (wh *Webhouse) QuarantinedSources() []string {
	wh.mu.RLock()
	var out []string
	for name, r := range wh.repos {
		if r.quarantined.Load() {
			out = append(out, name)
		}
	}
	wh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// journalState is the journal attachment point; it lives on the Webhouse
// but is declared here with the rest of the durability surface.
type journalState struct {
	journalMu sync.RWMutex
	journal   Journal
}
