// Fault-injection suite for the serving layer: soundness under transient
// source failures, graceful degradation during outages, deadline
// propagation, and the concurrency regressions fixed alongside (source
// evaluation outside the lock, atomic invalidate, shared global caches).
package webhouse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"incxml/internal/faulty"
	"incxml/internal/intern"
	"incxml/internal/mediator"
	"incxml/internal/query"
	"incxml/internal/tree"
	"incxml/internal/workload"
)

// fastRetry is a RetryConfig with sub-millisecond backoff so fault tests
// run quickly while still exercising the retry loop.
func fastRetry(seed int64) faulty.RetryConfig {
	return faulty.RetryConfig{
		MaxAttempts: 6,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    time.Millisecond,
		Seed:        seed,
	}
}

// flakyCatalog builds a webhouse over doc whose source access goes through
// an Injector (transient failures at failRate) behind a RetryClient.
func flakyCatalog(t *testing.T, doc tree.Tree, failRate float64, seed int64) (*Webhouse, *Source, *faulty.Injector, *faulty.RetryClient) {
	t.Helper()
	src, err := NewSource("catalog", workload.CatalogType(), doc)
	if err != nil {
		t.Fatal(err)
	}
	wh := New()
	wh.Register(src)
	inj := faulty.NewInjector(src.Name, src, faulty.InjectorConfig{FailRate: failRate, Seed: seed})
	client := faulty.NewRetryClient(inj, fastRetry(seed))
	if err := wh.SetClient(src.Name, client); err != nil {
		t.Fatal(err)
	}
	return wh, src, inj, client
}

// mustExplore retries Explore past the (rare) runs of transient failures
// that exhaust even the retry client.
func mustExplore(t *testing.T, wh *Webhouse, q query.Query) {
	t.Helper()
	for i := 0; ; i++ {
		_, err := wh.Explore(context.Background(), "catalog", q)
		if err == nil {
			return
		}
		if !errors.Is(err, faulty.ErrUnavailable) {
			t.Fatal(err)
		}
		if i >= 50 {
			t.Fatalf("explore kept failing after %d rounds: %v", i, err)
		}
	}
}

// assertSubsetOf fails unless every node of a also occurs in want — a
// degraded answer must be a lower approximation of the truth, never invent.
func assertSubsetOf(t *testing.T, a, want tree.Tree, what string) {
	t.Helper()
	ids := want.IDs()
	a.Walk(func(n *tree.Node) {
		if !ids[n.ID] {
			t.Errorf("%s: node %s not part of the true answer", what, n.ID)
		}
	})
}

// The headline suite: with every source call failing transiently 30% of
// the time, concurrent serving must stay sound — exact answers when the
// retries win, flagged lower approximations when they do not, never a
// wrong answer. Run under -race this also exercises the injector, the
// retry client, and the repository locking concurrently.
func TestServingSoundUnderTransientFaults(t *testing.T) {
	doc := workload.PaperCatalog()
	truth := workload.Query4().Eval(doc)
	src, err := NewSource("catalog", workload.CatalogType(), doc)
	if err != nil {
		t.Fatal(err)
	}
	inj := faulty.NewInjector(src.Name, src, faulty.InjectorConfig{FailRate: 0.3, Seed: 7})
	client := faulty.NewRetryClient(inj, fastRetry(7))

	const workers, rounds = 8, 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	exact, degradedN := 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// A fresh webhouse per round keeps the completion path hot;
				// the source, injector and retry client are shared, so the
				// fault machinery itself serves concurrently.
				wh := New()
				wh.Register(src)
				if err := wh.SetClient(src.Name, client); err != nil {
					t.Error(err)
					return
				}
				mustExplore(t, wh, workload.Query1(200))
				ca, err := wh.AnswerComplete(context.Background(), "catalog", workload.Query4())
				if err != nil {
					// Source errors degrade rather than surface; anything
					// else is a real bug.
					t.Errorf("worker %d round %d: %v", w, i, err)
					continue
				}
				if ca.Degraded {
					if !errors.Is(ca.Cause, faulty.ErrUnavailable) {
						t.Errorf("degraded without unavailability cause: %v", ca.Cause)
					}
					if ca.Local == nil || !ca.Local.Possible.Member(truth) {
						t.Error("degraded answer excludes the true answer from the possible set")
					}
					assertSubsetOf(t, ca.Answer, truth, "degraded answer")
					mu.Lock()
					degradedN++
					mu.Unlock()
					continue
				}
				if !ca.Answer.Equal(truth) {
					t.Errorf("worker %d round %d: wrong exact answer:\n%s\nwant:\n%s", w, i, ca.Answer, truth)
				}
				mu.Lock()
				exact++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if exact == 0 {
		t.Error("no round produced an exact answer despite retries")
	}
	st := client.Stats()
	if st.Retries == 0 {
		t.Error("30% fault rate produced no retries")
	}
	if st.Attempts <= st.Retries {
		t.Errorf("attempt accounting broken: %+v", st)
	}
	t.Logf("exact=%d degraded=%d stats=%+v injector: %d calls %d failures",
		exact, degradedN, st, inj.Calls(), inj.Failures())
}

// A hard outage: AnswerComplete degrades to the flagged local
// approximation, the degradation counter moves, repeated failures open the
// circuit breaker, and the webhouse recovers to exact answers once the
// source is back and the cooldown has passed.
func TestAnswerCompleteDegradesOnOutageAndRecovers(t *testing.T) {
	doc := workload.PaperCatalog()
	truth := workload.Query4().Eval(doc)
	src, err := NewSource("catalog", workload.CatalogType(), doc)
	if err != nil {
		t.Fatal(err)
	}
	wh := New()
	wh.Register(src)
	inj := faulty.NewInjector(src.Name, src, faulty.InjectorConfig{})
	client := faulty.NewRetryClient(inj, faulty.RetryConfig{
		MaxAttempts:      2,
		BaseDelay:        50 * time.Microsecond,
		MaxDelay:         time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err := wh.SetClient(src.Name, client); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := wh.Explore(ctx, "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}

	inj.SetDown(true)
	const downCalls = 5
	for i := 0; i < downCalls; i++ {
		ca, err := wh.AnswerComplete(ctx, "catalog", workload.Query4())
		if err != nil {
			t.Fatalf("outage call %d errored instead of degrading: %v", i, err)
		}
		if !ca.Degraded {
			t.Fatalf("outage call %d not degraded", i)
		}
		if !errors.Is(ca.Cause, faulty.ErrUnavailable) {
			t.Errorf("cause does not wrap ErrUnavailable: %v", ca.Cause)
		}
		if ca.Local == nil || !ca.Local.Possible.Member(truth) {
			t.Error("degraded answer excludes the true answer")
		}
		assertSubsetOf(t, ca.Answer, truth, "degraded answer")
		if ca.LocalQueries == 0 {
			t.Error("degraded result should report the attempted local queries")
		}
	}
	st := wh.Stats()
	if st.DegradedAnswers != downCalls {
		t.Errorf("DegradedAnswers = %d, want %d", st.DegradedAnswers, downCalls)
	}
	if st.Source.BreakerOpens == 0 {
		t.Errorf("breaker never opened during the outage: %+v", st.Source)
	}
	if st.Source.Rejections == 0 {
		t.Errorf("open breaker rejected nothing: %+v", st.Source)
	}

	inj.SetDown(false)
	time.Sleep(25 * time.Millisecond) // past the breaker cooldown
	ca, err := wh.AnswerComplete(ctx, "catalog", workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if ca.Degraded {
		t.Fatalf("still degraded after recovery: %v", ca.Cause)
	}
	if !ca.Answer.Equal(truth) {
		t.Errorf("recovered answer wrong:\n%s\nwant:\n%s", ca.Answer, truth)
	}
	if got := wh.Stats().DegradedAnswers; got != downCalls {
		t.Errorf("recovery bumped DegradedAnswers to %d", got)
	}
}

// An expired context is refused promptly by every serving entry point —
// no source contact, no pooled computation.
func TestExpiredContextRefusedEverywhere(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wh.Explore(ctx, "catalog", workload.Query1(200)); !errors.Is(err, context.Canceled) {
		t.Errorf("Explore: %v", err)
	}
	if _, err := wh.AnswerLocally(ctx, "catalog", workload.Query3(100)); !errors.Is(err, context.Canceled) {
		t.Errorf("AnswerLocally: %v", err)
	}
	if _, err := wh.AnswerComplete(ctx, "catalog", workload.Query4()); !errors.Is(err, context.Canceled) {
		t.Errorf("AnswerComplete: %v", err)
	}
}

// A deadline interrupts a slow source mid-call: Explore against a source
// with multi-second injected latency returns the deadline error well
// before the latency elapses, and AnswerComplete (whose degraded fallback
// cannot run either once the deadline passed) surfaces it too.
func TestDeadlineInterruptsSlowSource(t *testing.T) {
	wh, _, inj, _ := flakyCatalog(t, workload.PaperCatalog(), 0, 1)
	inj.SetLatency(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := wh.Explore(ctx, "catalog", workload.Query1(200))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Explore under deadline: %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("Explore blocked %v on a 30ms deadline", el)
	}
	// Nothing was learned, so AnswerComplete must reach for the source too.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if _, err := wh.AnswerComplete(ctx2, "catalog", workload.Query4()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("AnswerComplete under deadline: %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("AnswerComplete blocked %v on a 30ms deadline", el)
	}
}

// Satellite 4 property: across seeds, a Theorem 3.19 completion executed
// through a 30%-flaky retrying client yields (i) pairwise non-overlapping
// answers, (ii) answers identical to a direct fault-free execution, and
// (iii) a merge that answers the query exactly — retries repair the random
// subset of failing local queries without corrupting the completion.
func TestCompletionPropertyUnderFaults(t *testing.T) {
	hidden := workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 120, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "nikon", Name: 11, Price: 199, Subcat: workload.ValCamera},
		{ID: "sony", Name: 12, Price: 175, Subcat: workload.ValCDPlayer},
		{ID: "leica", Name: 17, Price: 999, Subcat: workload.ValCamera}, // invisible to the exploration queries
	})
	q4 := workload.Query4()
	want := q4.Eval(hidden)
	var totalRetries uint64
	for seed := int64(1); seed <= 5; seed++ {
		wh, _, _, client := flakyCatalog(t, hidden, 0.3, seed)
		mustExplore(t, wh, workload.Query1(200))
		mustExplore(t, wh, workload.Query2())
		know, err := wh.Knowledge("catalog")
		if err != nil {
			t.Fatal(err)
		}
		ls, err := mediator.Complete(know, q4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ls) == 0 {
			t.Fatalf("seed %d: empty completion for a non-answerable query", seed)
		}
		var answers []tree.Tree
		for i := 0; ; i++ {
			answers, err = mediator.ExecuteAll(context.Background(), client, ls)
			if err == nil {
				break
			}
			if !errors.Is(err, faulty.ErrUnavailable) || i >= 50 {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		seen := map[tree.NodeID]int{}
		for qi, a := range answers {
			if !a.Equal(ls[qi].Execute(hidden)) {
				t.Errorf("seed %d: retried answer %d differs from direct execution", seed, qi)
			}
			a.Walk(func(n *tree.Node) {
				if prev, ok := seen[n.ID]; ok && prev != qi {
					t.Errorf("seed %d: node %s returned by local queries %d and %d", seed, n.ID, prev, qi)
				}
				seen[n.ID] = qi
			})
		}
		merged, err := mediator.Merge(hidden, know.DataTree(), answers...)
		if err != nil {
			t.Fatalf("seed %d: merge: %v", seed, err)
		}
		if got := q4.Eval(merged); !got.Equal(want) {
			t.Errorf("seed %d: merged completion answers wrong:\n%s\nwant:\n%s", seed, got, want)
		}
		totalRetries += client.Stats().Retries
	}
	if totalRetries == 0 {
		t.Error("no local query ever needed a retry at 30% fault rate")
	}
}

// Satellite 1 regression: Source.Ask/AskLocal evaluate outside the source
// lock, so two concurrent queries overlap. Against the old
// hold-the-lock-across-eval code the second call cannot reach the
// evaluation hook while the first is parked in it, and this test times out.
func TestSourceQueriesOverlap(t *testing.T) {
	src, err := NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	testHookSourceEval = func() {
		arrived <- struct{}{}
		<-release
	}
	defer func() { testHookSourceEval = nil }()

	done := make(chan tree.Tree, 2)
	go func() { done <- src.Ask(workload.Query1(200)) }()
	go func() {
		done <- src.AskLocal(mediator.LocalQuery{At: "canon", Q: query.MustParse("product\n  price\n")})
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			close(release)
			t.Fatal("concurrent source queries serialized: evaluation holds the source lock")
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		if a := <-done; a.IsEmpty() {
			t.Error("overlapping query lost its answer")
		}
	}
	if q, n := src.Served(); q != 2 || n == 0 {
		t.Errorf("served counters (%d, %d) after two overlapping queries", q, n)
	}
}

// Satellite 2 regression: invalidate bumps the generation and clears the
// caches in ONE cacheMu critical section. Two invariants follow, and the
// old code (gen.Add before taking cacheMu) breaks both: (i) the generation
// never changes while cacheMu is held, and (ii) a cached entry can never
// coexist with a newer generation.
func TestInvalidateGenerationAtomic(t *testing.T) {
	wh, _ := newCatalogWebhouse(t)
	r, err := wh.Repo("catalog")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // invalidator
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.invalidate()
			}
		}
	}()
	go func() { // storer: every entry's key records the generation it was computed at
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				gen := r.gen.Load()
				r.storeLocal(gen, intern.String(fmt.Sprintf("g%d", gen)), &LocalAnswer{})
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		r.cacheMu.Lock()
		g1 := r.gen.Load()
		for k := range r.answers {
			if k != intern.String(fmt.Sprintf("g%d", g1)) {
				r.cacheMu.Unlock()
				t.Fatalf("cache entry %d visible at generation %d: invalidate is not atomic", k, g1)
			}
		}
		for i := 0; i < 200; i++ { // dwell inside the critical section
			if g2 := r.gen.Load(); g2 != g1 {
				r.cacheMu.Unlock()
				t.Fatalf("generation moved %d -> %d while cacheMu was held: bump is outside the critical section", g1, g2)
			}
		}
		r.cacheMu.Unlock()
	}
}

// Satellite 3: the decision and membership caches in Stats are
// process-global — two webhouses report identical counters and see each
// other's traffic — while the answer-cache and degradation counters stay
// per-webhouse.
func TestStatsGlobalCachesSharedAcrossWebhouses(t *testing.T) {
	wh1, _ := newCatalogWebhouse(t)
	wh2, _ := newCatalogWebhouse(t)
	base := wh2.Stats()
	ctx := context.Background()
	if _, err := wh1.Explore(ctx, "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := wh1.AnswerLocally(ctx, "catalog", workload.Query3(100)); err != nil {
		t.Fatal(err)
	}
	s1, s2 := wh1.Stats(), wh2.Stats()
	if s1.Decision != s2.Decision || s1.Membership != s2.Membership {
		t.Errorf("global cache counters diverge between webhouses:\n%+v\n%+v", s1, s2)
	}
	if s2.Decision.Hits+s2.Decision.Misses <= base.Decision.Hits+base.Decision.Misses {
		t.Error("wh1's decision-cache traffic invisible to wh2: cache not shared?")
	}
	if s2.AnswerCacheMisses != base.AnswerCacheMisses || s2.DegradedAnswers != base.DegradedAnswers {
		t.Error("per-webhouse counters leaked across instances")
	}
}
