package webhouse

import (
	"context"
	"testing"

	"incxml/internal/cond"
	"incxml/internal/extquery"
	"incxml/internal/pathre"
	"incxml/internal/workload"
)

func exploredWebhouse(t *testing.T) *Webhouse {
	t.Helper()
	src, err := NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	wh := New()
	wh.Register(src)
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query1(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.Explore(context.Background(), "catalog", workload.Query2()); err != nil {
		t.Fatal(err)
	}
	return wh
}

func TestAnswerExtendedExactWhenCovered(t *testing.T) {
	wh := exploredWebhouse(t)
	// A join query over cheap pictured cameras: two product branches with a
	// shared name variable (trivially satisfiable by one product). Its
	// covering ps-query is Query 3-like and fully answerable.
	q := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(),
			extquery.V("name", "X"),
			extquery.N("price", cond.LtInt(100)),
			extquery.N("cat", cond.EqInt(workload.ValElec),
				extquery.N("subcat", cond.EqInt(workload.ValCamera)))))}
	got, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact {
		t.Error("covered extended query should be exact")
	}
	if !got.Known.IsEmpty() {
		t.Error("no camera under 100 exists; answer should be empty")
	}
}

func TestAnswerExtendedInexactWhenUncovered(t *testing.T) {
	wh := exploredWebhouse(t)
	// All cameras (the uncoverable Query 4 shape): not exact.
	q := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(),
			extquery.N("name", cond.True()),
			extquery.N("cat", cond.EqInt(workload.ValElec),
				extquery.N("subcat", cond.EqInt(workload.ValCamera)))))}
	got, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Error("uncovered extended query must not claim exactness")
	}
	if got.Known.Find("canon") == nil {
		t.Error("known cameras missing from the local answer")
	}
}

func TestAnswerExtendedNonMonotoneNeverExact(t *testing.T) {
	wh := exploredWebhouse(t)
	// Negation: products without pictures. Unseen data could flip verdicts;
	// never exact, but still answered over the known data.
	q := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(),
			extquery.N("name", cond.True()),
			extquery.Negated(extquery.N("picture", cond.True()))))}
	got, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Error("negation query claimed exactness")
	}
	// Optional subtrees: likewise inexact.
	qOpt := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(),
			extquery.Optional(extquery.N("picture", cond.True()))))}
	if got, err := wh.AnswerExtended(context.Background(), "catalog", qOpt); err != nil || got.Exact {
		t.Errorf("optional query exactness = %v, err = %v", got.Exact, err)
	}
	// Path expressions: inexact.
	qPath := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.OnPath(extquery.N("subcat", cond.True()), pathre.AnyStar()))}
	if got, err := wh.AnswerExtended(context.Background(), "catalog", qPath); err != nil || got.Exact {
		t.Errorf("path query exactness = %v, err = %v", got.Exact, err)
	}
}

func TestAnswerExtendedBranchingMergedLeaves(t *testing.T) {
	wh := exploredWebhouse(t)
	// Two same-label leaf branches (prices in two ranges) merge into one
	// covering condition.
	q := extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(),
			extquery.N("price", cond.LtInt(60)),
			extquery.N("price", cond.GtInt(5000))))}
	got, err := wh.AnswerExtended(context.Background(), "catalog", q)
	if err != nil {
		t.Fatal(err)
	}
	// Both branches must match one product's single price: impossible here,
	// so the known answer is empty. Exactness depends on coverage of the
	// merged query; either verdict is sound, but the answer must be empty.
	if !got.Known.IsEmpty() {
		t.Error("contradictory price branches matched")
	}
}

func TestAnswerExtendedUnknownSource(t *testing.T) {
	wh := New()
	if _, err := wh.AnswerExtended(context.Background(), "nope", extquery.Query{}); err == nil {
		t.Error("unknown source accepted")
	}
}
