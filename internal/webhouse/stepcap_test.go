package webhouse_test

import (
	"context"
	"testing"

	"incxml/internal/budget"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
)

// TestStepCapTightensBudget: a request-scoped budget.WithStepCap must
// tighten the webhouse's solver budget — a one-step cap exhausts on a
// blow-up instance the uncapped house decides exactly. The capped calls run
// first: exhausted answers are never cached, so the later uncapped run
// proves the cap (not the server allowance, which is unlimited here) was
// the limit.
func TestStepCapTightensBudget(t *testing.T) {
	ctx := context.Background()
	src, err := webhouse.NewSource("blowup", workload.BlowupType(), workload.BlowupWorld())
	if err != nil {
		t.Fatal(err)
	}
	wh := webhouse.New()
	wh.Register(src)
	for i := int64(1); i <= 4; i++ {
		if _, err := wh.Explore(ctx, "blowup", workload.BlowupQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := workload.BlowupQuery(5)

	capped, err := wh.AnswerLocally(budget.WithStepCap(ctx, 1), "blowup", q)
	if err != nil {
		t.Fatalf("capped answer errored instead of degrading: %v", err)
	}
	if !capped.BudgetExhausted {
		t.Error("one-step cap did not exhaust the budget")
	}

	// Uncapped, the same query decides without exhaustion.
	free, err := wh.AnswerLocally(ctx, "blowup", q)
	if err != nil {
		t.Fatal(err)
	}
	if free.BudgetExhausted {
		t.Error("uncapped answer exhausted an unlimited budget")
	}
}
