package ctype

import (
	"strings"
	"testing"

	"incxml/internal/cond"
	"incxml/internal/dtd"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

func v(n int64) rat.Rat { return rat.FromInt(n) }

// simpleType builds: root r; r -> a* b+ | c?; a leaf with cond != 0;
// b leaf; c leaf with unsatisfiable cond.
func simpleType() *Type {
	t := New()
	t.Roots = []Symbol{"r"}
	t.Sigma["r"] = LabelTarget("r")
	t.Sigma["a"] = LabelTarget("a")
	t.Sigma["b"] = LabelTarget("b")
	t.Sigma["c"] = LabelTarget("c")
	t.Mu["r"] = Disj{
		SAtom{{Sym: "a", Mult: dtd.Star}, {Sym: "b", Mult: dtd.Plus}},
		SAtom{{Sym: "c", Mult: dtd.Opt}},
	}
	t.Cond["a"] = cond.NeInt(0)
	t.Cond["c"] = cond.False()
	return t
}

func TestFromDTD(t *testing.T) {
	base := dtd.MustParse("root: catalog\ncatalog -> product+\nproduct -> name price\n")
	ct := FromDTD(base)
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ct.Roots) != 1 || ct.Roots[0] != "catalog" {
		t.Fatalf("roots = %v", ct.Roots)
	}
	d := ct.DisjFor("product")
	if len(d) != 1 || len(d[0]) != 2 {
		t.Fatalf("product disj = %v", d)
	}
	if ct.Empty() {
		t.Error("catalog type should be nonempty")
	}
	// Conformance must agree with the dtd validator on label-only trees.
	good := tree.Tree{Root: tree.New("catalog", rat.Zero,
		tree.New("product", rat.Zero,
			tree.New("name", rat.Zero), tree.New("price", rat.Zero)))}
	if ct.Member(good) != base.Conforms(good) || !ct.Member(good) {
		t.Error("membership disagrees with dtd validation on a valid tree")
	}
	bad := tree.Tree{Root: tree.New("catalog", rat.Zero)}
	if ct.Member(bad) {
		t.Error("catalog with no product accepted")
	}
}

func TestProductiveAndEmpty(t *testing.T) {
	ty := simpleType()
	prod := ty.Productive()
	if !prod["r"] || !prod["a"] || !prod["b"] {
		t.Errorf("productive = %v", prod)
	}
	if prod["c"] {
		t.Error("c has unsatisfiable condition but is productive")
	}
	if ty.Empty() {
		t.Error("type should be nonempty")
	}
	// With b dead, the first disjunct is not viable, but the second (c?) still
	// admits a leaf root: the type stays nonempty.
	ty.Cond["b"] = cond.False()
	if ty.Empty() {
		t.Error("leaf-root escape should keep the type nonempty")
	}
	// Requiring dead symbols in every disjunct makes it empty.
	ty.Mu["r"] = Disj{SAtom{{Sym: "b", Mult: dtd.One}}, SAtom{{Sym: "c", Mult: dtd.Plus}}}
	if !ty.Empty() {
		t.Error("type with all disjuncts requiring dead symbols should be empty")
	}
}

func TestEmptyRecursive(t *testing.T) {
	// r -> r : no finite tree exists.
	ty := New()
	ty.Roots = []Symbol{"r"}
	ty.Sigma["r"] = LabelTarget("r")
	ty.Mu["r"] = Disj{SAtom{{Sym: "r", Mult: dtd.One}}}
	if !ty.Empty() {
		t.Error("infinitely recursive type should be empty")
	}
	// Adding a leaf escape makes it nonempty.
	ty.Mu["r"] = append(ty.Mu["r"], SAtom{})
	if ty.Empty() {
		t.Error("type with leaf escape should be nonempty")
	}
}

func TestUseful(t *testing.T) {
	ty := simpleType()
	useful := ty.Useful()
	if !useful["r"] || !useful["a"] || !useful["b"] {
		t.Errorf("useful = %v", useful)
	}
	if useful["c"] {
		t.Error("dead symbol c reported useful")
	}
	// A productive but unreachable symbol is not useful.
	ty.Sigma["z"] = LabelTarget("z")
	ty.Mu["z"] = Disj{SAtom{}}
	if ty.Useful()["z"] {
		t.Error("unreachable z reported useful")
	}
	// A symbol required by a dead disjunct only is not useful: d appears only
	// alongside required dead c2.
	ty.Sigma["c2"] = LabelTarget("c2")
	ty.Cond["c2"] = cond.False()
	ty.Sigma["d"] = LabelTarget("d")
	ty.Mu["d"] = Disj{SAtom{}}
	ty.Mu["r"] = append(ty.Mu["r"], SAtom{{Sym: "c2", Mult: dtd.One}, {Sym: "d", Mult: dtd.Star}})
	if ty.Useful()["d"] {
		t.Error("d reachable only via dead disjunct reported useful")
	}
}

func TestTrimUseless(t *testing.T) {
	ty := simpleType()
	trimmed := ty.TrimUseless()
	if _, ok := trimmed.Sigma["c"]; ok {
		t.Error("dead c survived trimming")
	}
	// Semantics preserved on a sample.
	sample := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(1)), tree.New("b", rat.Zero))}
	if ty.Member(sample) != trimmed.Member(sample) {
		t.Error("trim changed membership")
	}
	// The disjunct requiring c is gone but its ?-item sibling case remains:
	// the second disjunct becomes the empty atom (c dropped).
	leaf := tree.Tree{Root: tree.New("r", rat.Zero)}
	if !trimmed.Member(leaf) {
		t.Error("leaf root should remain a member after trim (c? dropped)")
	}
	if !ty.Member(leaf) {
		t.Error("leaf root should be a member before trim")
	}
}

func TestMemberConditions(t *testing.T) {
	ty := simpleType()
	ok := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(5)), tree.New("b", rat.Zero))}
	if !ty.Member(ok) {
		t.Error("valid tree rejected")
	}
	badValue := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(0)), tree.New("b", rat.Zero))}
	if ty.Member(badValue) {
		t.Error("a=0 violates cond(a) != 0 but was accepted")
	}
	noB := tree.Tree{Root: tree.New("r", rat.Zero, tree.New("a", v(1)))}
	if ty.Member(noB) {
		t.Error("missing required b accepted")
	}
	manyB := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("b", rat.Zero), tree.New("b", rat.Zero), tree.New("b", rat.Zero))}
	if !ty.Member(manyB) {
		t.Error("b+ with three b rejected")
	}
	wrongLabel := tree.Tree{Root: tree.New("x", rat.Zero)}
	if ty.Member(wrongLabel) {
		t.Error("wrong root label accepted")
	}
	if ty.Member(tree.Empty()) {
		t.Error("empty tree accepted")
	}
}

func TestMemberSpecialization(t *testing.T) {
	// Two specializations of label a with disjoint conditions and different
	// allowed children: cheap a (<100) must be a leaf; expensive a (>=100)
	// must have one b child.
	ty := New()
	ty.Roots = []Symbol{"r"}
	ty.Sigma["r"] = LabelTarget("r")
	ty.Sigma["a1"] = LabelTarget("a")
	ty.Sigma["a2"] = LabelTarget("a")
	ty.Sigma["b"] = LabelTarget("b")
	ty.Mu["r"] = Disj{SAtom{{Sym: "a1", Mult: dtd.Star}, {Sym: "a2", Mult: dtd.Star}}}
	ty.Cond["a1"] = cond.LtInt(100)
	ty.Cond["a2"] = cond.GeInt(100)
	ty.Mu["a2"] = Disj{SAtom{{Sym: "b", Mult: dtd.One}}}
	cheapLeaf := tree.Tree{Root: tree.New("r", rat.Zero, tree.New("a", v(50)))}
	if !ty.Member(cheapLeaf) {
		t.Error("cheap leaf a rejected")
	}
	cheapWithChild := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(50), tree.New("b", rat.Zero)))}
	if ty.Member(cheapWithChild) {
		t.Error("cheap a with child accepted")
	}
	richWithChild := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(150), tree.New("b", rat.Zero)))}
	if !ty.Member(richWithChild) {
		t.Error("expensive a with b rejected")
	}
	richLeaf := tree.Tree{Root: tree.New("r", rat.Zero, tree.New("a", v(150)))}
	if ty.Member(richLeaf) {
		t.Error("expensive leaf a accepted")
	}
}

func TestMemberNodeTarget(t *testing.T) {
	ty := New()
	ty.Roots = []Symbol{"rsym"}
	ty.Sigma["rsym"] = NodeTarget("n1")
	ty.Mu["rsym"] = Disj{SAtom{}}
	pinned := tree.Tree{Root: tree.NewID("n1", "root", rat.Zero)}
	if !ty.Member(pinned) {
		t.Error("pinned node rejected")
	}
	other := tree.Tree{Root: tree.NewID("n2", "root", rat.Zero)}
	if ty.Member(other) {
		t.Error("wrong node id accepted")
	}
}

func TestWitnessTree(t *testing.T) {
	ty := simpleType()
	w, ok := ty.WitnessTree()
	if !ok {
		t.Fatal("nonempty type has no witness")
	}
	if !ty.Member(w) {
		t.Errorf("witness not a member:\n%s", w)
	}
	dead := New()
	dead.Roots = []Symbol{"r"}
	dead.Sigma["r"] = LabelTarget("r")
	dead.Cond["r"] = cond.False()
	if _, ok := dead.WitnessTree(); ok {
		t.Error("empty type produced a witness")
	}
}

func TestValidateErrors(t *testing.T) {
	ty := New()
	ty.Roots = []Symbol{"r"}
	if err := ty.Validate(); err == nil {
		t.Error("missing sigma entry accepted")
	}
	ty.Sigma["r"] = LabelTarget("r")
	ty.Mu["r"] = Disj{SAtom{{Sym: "r", Mult: dtd.One}, {Sym: "r", Mult: dtd.Star}}}
	if err := ty.Validate(); err == nil {
		t.Error("duplicate symbol in atom accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	ty := simpleType()
	cp := ty.Clone()
	cp.Cond["a"] = cond.True()
	cp.Mu["r"] = Disj{}
	if ty.CondFor("a").IsTrue() {
		t.Error("clone mutation leaked into original cond")
	}
	if len(ty.DisjFor("r")) != 2 {
		t.Error("clone mutation leaked into original mu")
	}
}

func TestRename(t *testing.T) {
	ty := simpleType()
	rn := ty.Rename(func(s Symbol) Symbol { return "x_" + s })
	if err := rn.Validate(); err != nil {
		t.Fatal(err)
	}
	if rn.Roots[0] != "x_r" {
		t.Errorf("root = %v", rn.Roots)
	}
	// Semantics unchanged.
	sample := tree.Tree{Root: tree.New("r", rat.Zero,
		tree.New("a", v(3)), tree.New("b", rat.Zero))}
	if ty.Member(sample) != rn.Member(sample) {
		t.Error("rename changed semantics")
	}
}

func TestStringRendering(t *testing.T) {
	ty := simpleType()
	s := ty.String()
	for _, want := range []string{"root: r", "r -> a* b+ v c?", "cond(a) = != 0", "cond(c) = false"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestFixedValue(t *testing.T) {
	ty := New()
	ty.Sigma["n"] = LabelTarget("a")
	ty.Cond["n"] = cond.EqInt(7)
	if val, ok := ty.FixedValue("n"); !ok || !val.Equal(v(7)) {
		t.Errorf("FixedValue = %v %v", val, ok)
	}
	ty.Cond["m"] = cond.LeInt(7)
	if _, ok := ty.FixedValue("m"); ok {
		t.Error("range condition reported as fixed value")
	}
}
