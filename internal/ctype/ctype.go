// Package ctype implements conditional tree types (Section 2, "Conditional
// tree types"): tree types extended with (i) disjunctions of multiplicity
// atoms, (ii) conditions on data values, and (iii) a specialization mapping σ
// from a specialized alphabet Σ′ to the base alphabet. Conditional tree
// types are the "missing information" half of incomplete trees.
//
// Symbols of Σ′ specialize either a base label in Σ or a data node id in N
// (incomplete trees view instantiated nodes as labels; Definition 2.7). The
// Target type captures this choice.
package ctype

import (
	"fmt"
	"sort"
	"strings"

	"incxml/internal/cond"
	"incxml/internal/dtd"
	"incxml/internal/matching"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// Symbol is an element of the specialized alphabet Σ′.
type Symbol string

// Target is the image of a symbol under the specialization mapping σ:
// either a base label in Σ or a data node in N.
type Target struct {
	// Node is the data node id when the symbol specializes a node; empty
	// otherwise.
	Node tree.NodeID
	// Label is the base label when Node is empty.
	Label tree.Label
}

// LabelTarget returns a σ-image that is a base label.
func LabelTarget(l tree.Label) Target { return Target{Label: l} }

// NodeTarget returns a σ-image that is a data node.
func NodeTarget(n tree.NodeID) Target { return Target{Node: n} }

// IsNode reports whether the target is a data node.
func (t Target) IsNode() bool { return t.Node != "" }

// String renders the target.
func (t Target) String() string {
	if t.IsNode() {
		return "@" + string(t.Node)
	}
	return string(t.Label)
}

// SItem is one s^ω component of a multiplicity atom over Σ′.
type SItem struct {
	Sym  Symbol
	Mult dtd.Mult
}

// SAtom is a multiplicity atom over Σ′ (pairwise distinct symbols).
type SAtom []SItem

// Find returns the item for sym, if present.
func (a SAtom) Find(sym Symbol) (SItem, bool) {
	for _, it := range a {
		if it.Sym == sym {
			return it, true
		}
	}
	return SItem{}, false
}

// String renders the atom ("eps" when empty).
func (a SAtom) String() string {
	if len(a) == 0 {
		return "eps"
	}
	parts := make([]string, len(a))
	for i, it := range a {
		parts[i] = string(it.Sym) + it.Mult.String()
	}
	return strings.Join(parts, " ")
}

// Clone returns a copy of the atom.
func (a SAtom) Clone() SAtom { return append(SAtom(nil), a...) }

// Disj is a disjunction of multiplicity atoms. An empty Disj admits no
// children arrangement at all (the symbol is a dead end); the singleton
// {ε} admits exactly leaves.
type Disj []SAtom

// String renders the disjunction.
func (d Disj) String() string {
	if len(d) == 0 {
		return "none"
	}
	parts := make([]string, len(d))
	for i, a := range d {
		parts[i] = a.String()
	}
	return strings.Join(parts, " v ")
}

// Clone returns a deep copy.
func (d Disj) Clone() Disj {
	out := make(Disj, len(d))
	for i, a := range d {
		out[i] = a.Clone()
	}
	return out
}

// Type is a conditional tree type (Σ′, R, µ, cond, σ, Σ). The base alphabet
// Σ is implicit in the σ images.
type Type struct {
	// Roots is the set R ⊆ Σ′ of admissible root symbols.
	Roots []Symbol
	// Mu maps each symbol to its disjunction of multiplicity atoms. Symbols
	// absent from Mu admit only leaves (ε), mirroring the dtd package.
	Mu map[Symbol]Disj
	// Cond maps each symbol to the condition its data value must satisfy.
	// Absent symbols are unconstrained (true).
	Cond map[Symbol]cond.Cond
	// Sigma is the specialization mapping σ. Every symbol used anywhere must
	// have an entry.
	Sigma map[Symbol]Target
}

// New returns an empty conditional tree type ready to be populated.
func New() *Type {
	return &Type{
		Mu:    map[Symbol]Disj{},
		Cond:  map[Symbol]cond.Cond{},
		Sigma: map[Symbol]Target{},
	}
}

// FromDTD lifts a plain tree type into a conditional tree type with the
// identity specialization and vacuous conditions.
func FromDTD(t *dtd.Type) *Type {
	out := New()
	for _, r := range t.Roots {
		out.Roots = append(out.Roots, Symbol(r))
	}
	for _, l := range t.Alphabet() {
		out.Sigma[Symbol(l)] = LabelTarget(l)
		atom := t.AtomFor(l)
		var s SAtom
		for _, it := range atom {
			s = append(s, SItem{Sym: Symbol(it.Label), Mult: it.Mult})
		}
		out.Mu[Symbol(l)] = Disj{s}
	}
	return out
}

// Symbols returns the sorted specialized alphabet Σ′.
func (t *Type) Symbols() []Symbol {
	set := map[Symbol]bool{}
	for _, r := range t.Roots {
		set[r] = true
	}
	for s, d := range t.Mu {
		set[s] = true
		for _, a := range d {
			for _, it := range a {
				set[it.Sym] = true
			}
		}
	}
	for s := range t.Sigma {
		set[s] = true
	}
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DisjFor returns µ(s), defaulting to the single empty atom (leaves only).
func (t *Type) DisjFor(s Symbol) Disj {
	if d, ok := t.Mu[s]; ok {
		return d
	}
	return Disj{SAtom{}}
}

// CondFor returns cond(s), defaulting to true.
func (t *Type) CondFor(s Symbol) cond.Cond {
	if c, ok := t.Cond[s]; ok {
		return c
	}
	return cond.True()
}

// TargetFor returns σ(s). It panics if the symbol has no σ entry, which
// indicates a construction bug.
func (t *Type) TargetFor(s Symbol) Target {
	tg, ok := t.Sigma[s]
	if !ok {
		panic(fmt.Sprintf("ctype: symbol %q has no specialization target", s))
	}
	return tg
}

// Validate checks internal consistency: every used symbol has a σ entry and
// atoms have pairwise distinct symbols.
func (t *Type) Validate() error {
	for _, s := range t.Symbols() {
		if _, ok := t.Sigma[s]; !ok {
			return fmt.Errorf("ctype: symbol %q lacks a specialization target", s)
		}
	}
	for s, d := range t.Mu {
		for _, a := range d {
			seen := map[Symbol]bool{}
			for _, it := range a {
				if seen[it.Sym] {
					return fmt.Errorf("ctype: duplicate symbol %q in atom of %q", it.Sym, s)
				}
				seen[it.Sym] = true
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *Type) Clone() *Type {
	out := New()
	out.Roots = append([]Symbol(nil), t.Roots...)
	for s, d := range t.Mu {
		out.Mu[s] = d.Clone()
	}
	for s, c := range t.Cond {
		out.Cond[s] = c
	}
	for s, tg := range t.Sigma {
		out.Sigma[s] = tg
	}
	return out
}

// String renders the type in a textual form close to the paper's examples.
func (t *Type) String() string {
	var b strings.Builder
	roots := make([]string, len(t.Roots))
	for i, r := range t.Roots {
		roots[i] = string(r)
	}
	fmt.Fprintf(&b, "root: %s\n", strings.Join(roots, " "))
	for _, s := range t.Symbols() {
		if d, ok := t.Mu[s]; ok && !(len(d) == 1 && len(d[0]) == 0) {
			fmt.Fprintf(&b, "%s -> %s\n", s, d)
		}
		if c, ok := t.Cond[s]; ok && !c.IsTrue() {
			fmt.Fprintf(&b, "cond(%s) = %s\n", s, c)
		}
		if tg, ok := t.Sigma[s]; ok && tg.String() != string(s) {
			fmt.Fprintf(&b, "sigma(%s) = %s\n", s, tg)
		}
	}
	return b.String()
}

// Productive computes the set of productive symbols: those from which at
// least one finite data tree can be derived (the fixpoint underlying
// Lemma 2.5, analogous to CFG emptiness).
//
// A symbol s is productive iff cond(s) is satisfiable and some disjunct of
// µ(s) has all of its 1/+ items productive.
func (t *Type) Productive() map[Symbol]bool {
	prod := map[Symbol]bool{}
	for changed := true; changed; {
		changed = false
		for _, s := range t.Symbols() {
			if prod[s] {
				continue
			}
			if !t.CondFor(s).Satisfiable() {
				continue
			}
			for _, a := range t.DisjFor(s) {
				ok := true
				for _, it := range a {
					if (it.Mult == dtd.One || it.Mult == dtd.Plus) && !prod[it.Sym] {
						ok = false
						break
					}
				}
				if ok {
					prod[s] = true
					changed = true
					break
				}
			}
		}
	}
	return prod
}

// Empty reports whether rep(τ) = ∅ (Lemma 2.5; PTIME).
func (t *Type) Empty() bool {
	prod := t.Productive()
	for _, r := range t.Roots {
		if prod[r] {
			return false
		}
	}
	return true
}

// Useful computes the set of useful symbols (Corollary 2.6): those that
// label some node of some tree in rep(τ). A symbol is useful iff it is
// productive and reachable from a productive root through viable disjuncts
// (disjuncts whose 1/+ items are all productive).
func (t *Type) Useful() map[Symbol]bool {
	prod := t.Productive()
	useful := map[Symbol]bool{}
	var visit func(Symbol)
	visit = func(s Symbol) {
		if useful[s] || !prod[s] {
			return
		}
		useful[s] = true
		for _, a := range t.DisjFor(s) {
			viable := true
			for _, it := range a {
				if (it.Mult == dtd.One || it.Mult == dtd.Plus) && !prod[it.Sym] {
					viable = false
					break
				}
			}
			if !viable {
				continue
			}
			for _, it := range a {
				if prod[it.Sym] {
					visit(it.Sym)
				}
			}
		}
	}
	for _, r := range t.Roots {
		visit(r)
	}
	return useful
}

// TrimUseless returns a copy of the type with useless symbols removed:
// they are dropped from roots, from Σ′, and from atoms where they appear
// with multiplicity ? or ⋆; atoms requiring them (1 or +) are dropped
// entirely. The result represents the same set of trees.
func (t *Type) TrimUseless() *Type {
	useful := t.Useful()
	out := New()
	for _, r := range t.Roots {
		if useful[r] {
			out.Roots = append(out.Roots, r)
		}
	}
	for s, d := range t.Mu {
		if !useful[s] {
			continue
		}
		var nd Disj
		for _, a := range d {
			var na SAtom
			dead := false
			for _, it := range a {
				if useful[it.Sym] {
					na = append(na, it)
					continue
				}
				if it.Mult == dtd.One || it.Mult == dtd.Plus {
					dead = true
					break
				}
				// ? and ⋆ items of useless symbols are simply dropped.
			}
			if !dead {
				nd = append(nd, na)
			}
		}
		out.Mu[s] = nd
	}
	for s, c := range t.Cond {
		if useful[s] {
			out.Cond[s] = c
		}
	}
	for s, tg := range t.Sigma {
		if useful[s] {
			out.Sigma[s] = tg
		}
	}
	return out
}

// Member reports whether the data tree d (over the base alphabet Σ) belongs
// to rep(τ): there is a tree T′ over Σ′ with σ(T′) = d satisfying roots,
// conditions and multiplicity atoms. Node-targeted symbols additionally pin
// the node id (used by incomplete trees; plain conditional types have no
// node targets).
//
// Typing is computed by memoized recursion; children-to-atom assignment is a
// degree-constrained bipartite feasibility problem (matching.Feasible).
func (t *Type) Member(d tree.Tree) bool {
	if d.Root == nil {
		return false
	}
	memo := map[memoKey]bool{}
	for _, r := range t.Roots {
		if t.canType(d.Root, r, memo) {
			return true
		}
	}
	return false
}

type memoKey struct {
	node tree.NodeID
	sym  Symbol
}

func (t *Type) canType(n *tree.Node, s Symbol, memo map[memoKey]bool) bool {
	key := memoKey{n.ID, s}
	if v, ok := memo[key]; ok {
		return v
	}
	// Provisional false guards against cycles (which cannot type a finite
	// tree anyway).
	memo[key] = false
	v := t.canTypeUncached(n, s, memo)
	memo[key] = v
	return v
}

func (t *Type) canTypeUncached(n *tree.Node, s Symbol, memo map[memoKey]bool) bool {
	tg := t.TargetFor(s)
	if tg.IsNode() {
		if n.ID != tg.Node {
			return false
		}
	} else if n.Label != tg.Label {
		return false
	}
	if !t.CondFor(s).Holds(n.Value) {
		return false
	}
	for _, a := range t.DisjFor(s) {
		if t.atomMatches(n.Children, a, memo) {
			return true
		}
	}
	return false
}

func (t *Type) atomMatches(children []*tree.Node, a SAtom, memo map[memoKey]bool) bool {
	allowed := make([][]int, len(children))
	for j, c := range children {
		for i, it := range a {
			if t.canType(c, it.Sym, memo) {
				allowed[j] = append(allowed[j], i)
			}
		}
		if len(allowed[j]) == 0 {
			return false
		}
	}
	lo := make([]int, len(a))
	hi := make([]int, len(a))
	for i, it := range a {
		lo[i], hi[i] = it.Mult.Bounds()
		if hi[i] < 0 {
			hi[i] = matching.Unbounded
		}
	}
	return matching.Feasible(len(children), allowed, lo, hi)
}

// WitnessTree produces some data tree in rep(τ), or false if empty. The tree
// uses fresh node ids for label-targeted symbols and the pinned id for
// node-targeted symbols; values are witnesses of the symbol conditions.
// Starred/optional children are instantiated at their lower bounds, so the
// result is a minimal witness.
func (t *Type) WitnessTree() (tree.Tree, bool) {
	prod := t.Productive()
	var build func(s Symbol) *tree.Node
	build = func(s Symbol) *tree.Node {
		tg := t.TargetFor(s)
		w, _ := t.CondFor(s).Witness()
		var n *tree.Node
		if tg.IsNode() {
			n = tree.NewID(tg.Node, tree.Label("@"+string(tg.Node)), w)
		} else {
			n = tree.New(tg.Label, w)
		}
		for _, a := range t.DisjFor(s) {
			ok := true
			for _, it := range a {
				if (it.Mult == dtd.One || it.Mult == dtd.Plus) && !prod[it.Sym] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, it := range a {
				if it.Mult == dtd.One || it.Mult == dtd.Plus {
					n.Children = append(n.Children, build(it.Sym))
				}
			}
			return n
		}
		return n
	}
	for _, r := range t.Roots {
		if prod[r] {
			return tree.Tree{Root: build(r)}, true
		}
	}
	return tree.Tree{}, false
}

// Rename returns a copy of the type with every symbol passed through f.
// Used by product constructions to keep symbol names unique.
func (t *Type) Rename(f func(Symbol) Symbol) *Type {
	out := New()
	for _, r := range t.Roots {
		out.Roots = append(out.Roots, f(r))
	}
	for s, d := range t.Mu {
		nd := make(Disj, len(d))
		for i, a := range d {
			na := make(SAtom, len(a))
			for j, it := range a {
				na[j] = SItem{Sym: f(it.Sym), Mult: it.Mult}
			}
			nd[i] = na
		}
		out.Mu[f(s)] = nd
	}
	for s, c := range t.Cond {
		out.Cond[f(s)] = c
	}
	for s, tg := range t.Sigma {
		out.Sigma[f(s)] = tg
	}
	return out
}

// FixedValue returns the single admissible value for s when cond(s) is an
// equality, following the paper's cond(a) = v notation.
func (t *Type) FixedValue(s Symbol) (rat.Rat, bool) {
	return t.CondFor(s).AsPoint()
}
