package intern

import (
	"fmt"
	"sync"
	"testing"

	"incxml/internal/cond"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

func TestStringRoundTrip(t *testing.T) {
	a := String("hello")
	b := String("hello")
	if a != b {
		t.Fatalf("equal strings interned to different IDs: %d vs %d", a, b)
	}
	if c := String("world"); c == a {
		t.Fatalf("distinct strings share ID %d", a)
	}
	s, ok := ResolveString(a)
	if !ok || s != "hello" {
		t.Fatalf("ResolveString(%d) = %q, %v", a, s, ok)
	}
	if _, ok := ResolveString(0); ok {
		t.Fatal("zero ID resolved")
	}
}

func TestBytesMatchesString(t *testing.T) {
	if Bytes([]byte("xyz")) != String("xyz") {
		t.Fatal("Bytes and String disagree on the same content")
	}
}

func TestCondIdentity(t *testing.T) {
	// Logically equivalent conditions built differently intern equal.
	a := Cond(cond.GeInt(1).And(cond.LeInt(3)))
	b := Cond(cond.Between(rat.FromInt(1), rat.FromInt(3)))
	if a != b {
		t.Fatalf("equivalent conditions interned to %d and %d", a, b)
	}
	if Cond(cond.True()) != Cond(cond.Cond{}) {
		t.Fatal("zero-value condition not identified with True")
	}
	if Cond(cond.EqInt(1)) == Cond(cond.EqInt(2)) {
		t.Fatal("distinct conditions share an ID")
	}
	got, ok := ResolveCond(a)
	if !ok || !got.Equal(cond.Between(rat.FromInt(1), rat.FromInt(3))) {
		t.Fatalf("ResolveCond round trip failed: %v, %v", got, ok)
	}
}

func mkTree(seed int64) tree.Tree {
	kid1 := tree.NewID("k1", "a", rat.FromInt(seed))
	kid2 := tree.NewID("k2", "b", rat.FromInt(seed+1))
	return tree.Tree{Root: tree.NewID("r", "root", rat.FromInt(0), kid1, kid2)}
}

func TestTreeHashConsing(t *testing.T) {
	a := Tree(mkTree(1))
	b := Tree(mkTree(1))
	if a != b {
		t.Fatalf("equal trees interned to %d and %d", a, b)
	}
	if Tree(mkTree(2)) == a {
		t.Fatal("distinct trees share an ID")
	}
	// Child order must not matter.
	k1 := tree.NewID("k1", "a", rat.FromInt(1))
	k2 := tree.NewID("k2", "b", rat.FromInt(2))
	fwd := Tree(tree.Tree{Root: tree.NewID("r", "root", rat.FromInt(0), k1, k2)})
	k1b := tree.NewID("k1", "a", rat.FromInt(1))
	k2b := tree.NewID("k2", "b", rat.FromInt(2))
	rev := Tree(tree.Tree{Root: tree.NewID("r", "root", rat.FromInt(0), k2b, k1b)})
	if fwd != rev {
		t.Fatal("child order changed the interned ID")
	}
	// The canonical representative is Equal to the input.
	got, ok := ResolveTree(a)
	if !ok || !got.Equal(mkTree(1)) {
		t.Fatalf("ResolveTree round trip failed (ok=%v):\n%s", ok, got)
	}
	if Tree(tree.Empty()) != 0 {
		t.Fatal("empty tree must intern to the zero ID")
	}
}

// TestConcurrentIntern hammers all three tables from many goroutines; run
// under -race this is the interner's data-race test. Every goroutine interning
// the same value must observe the same ID.
func TestConcurrentIntern(t *testing.T) {
	const workers = 16
	const perWorker = 200
	ids := make([][]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[w] = make([]ID, 0, perWorker*3)
			for i := 0; i < perWorker; i++ {
				ids[w] = append(ids[w], String(fmt.Sprintf("conc-%d", i%50)))
				ids[w] = append(ids[w], Cond(cond.EqInt(int64(i%20))))
				ids[w] = append(ids[w], Tree(mkTree(int64(i%10))))
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i, id := range ids[w] {
			if id != ids[0][i] {
				t.Fatalf("worker %d slot %d: ID %d != worker 0's %d", w, i, id, ids[0][i])
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	before := Stats()
	String("stats-probe-a")
	String("stats-probe-a")
	after := Stats()
	if len(after) != 3 {
		t.Fatalf("want 3 tables, got %d", len(after))
	}
	var b0, a0 TableStats
	for i := range after {
		if after[i].Table == "strings" {
			a0, b0 = after[i], before[i]
		}
	}
	if a0.Misses <= b0.Misses || a0.Hits <= b0.Hits || a0.BytesSaved <= b0.BytesSaved {
		t.Fatalf("stats did not advance: before %+v after %+v", b0, a0)
	}
}

// FuzzInternRoundTrip asserts the two intern laws on arbitrary strings:
// intern→resolve is the identity, and equal values intern to the same ID.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("hello")
	f.Add("a\x00b")
	f.Add("日本語")
	f.Fuzz(func(t *testing.T, s string) {
		id1 := String(s)
		id2 := String(s)
		if id1 != id2 {
			t.Fatalf("equal strings interned differently: %d vs %d", id1, id2)
		}
		got, ok := ResolveString(id1)
		if !ok || got != s {
			t.Fatalf("round trip: ResolveString(String(%q)) = %q, %v", s, got, ok)
		}
	})
}
