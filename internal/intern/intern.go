// Package intern provides process-wide hash-consing: strings and symbols,
// conditions, and whole data-tree nodes are mapped to canonical
// representatives with stable 64-bit IDs. Two equal values always intern to
// the same ID, so downstream equality (memo-cache keys, set membership,
// fingerprints) becomes a single integer compare instead of re-hashing or
// re-serializing structures.
//
// Invariants (see DESIGN.md "Hash-consing & interning"):
//
//   - Interned values are immutable. Callers must never mutate a tree node
//     after interning it; the canonical representative is shared.
//   - IDs are stable within a process but NOT across processes or restarts;
//     they must never be persisted.
//   - Tables are append-only: memory grows with the number of *distinct*
//     values interned. Hot paths therefore intern only long-lived values
//     (knowledge trees, query keys, conditions, symbols) and use per-scan
//     scratch tables for transient values (see conj's certificate scan).
//
// Every table keeps hit/miss counters and a bytes-saved estimate (the
// encoded size of values that were already present), exposed as
// incxml_intern_* metrics.
package intern

import (
	"sync"
	"sync/atomic"

	"incxml/internal/cond"
	"incxml/internal/tree"
)

// ID is a stable, process-local identifier of an interned value. The zero ID
// is never allocated, so it can serve as a sentinel.
type ID uint64

const shardBits = 4
const numShards = 1 << shardBits // 16

// table is one sharded intern table: canonical byte key -> ID, with the
// per-shard entry list giving Resolve. IDs encode (shard, slot) as
// slot<<shardBits | shard, plus one so the zero ID stays free.
type table struct {
	name   string
	shards [numShards]shard
	hits   atomic.Uint64
	misses atomic.Uint64
	saved  atomic.Uint64 // bytes-saved estimate: encoded size of re-interned values
}

type shard struct {
	mu      sync.RWMutex
	ids     map[string]ID
	entries []any // slot -> stored value (string, cond.Cond, *tree.Node)
}

// fnv1a64 hashes b (FNV-1a, 64-bit).
func fnv1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// fnv1a64s is fnv1a64 over a string, avoiding the []byte conversion.
func fnv1a64s(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// get interns key, storing value() in the entry list on first sight.
// The key slice is not retained.
func (t *table) get(key []byte, value func() any) ID {
	idx := fnv1a64(key) & (numShards - 1)
	sh := &t.shards[idx]
	sh.mu.RLock()
	id, ok := sh.ids[string(key)] // no-alloc map lookup
	sh.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		t.saved.Add(uint64(len(key)))
		return id
	}
	return t.insert(idx, string(key), value)
}

// getStr is get for string keys, allocation-free on the hit path.
func (t *table) getStr(key string, value func() any) ID {
	idx := fnv1a64s(key) & (numShards - 1)
	sh := &t.shards[idx]
	sh.mu.RLock()
	id, ok := sh.ids[key]
	sh.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		t.saved.Add(uint64(len(key)))
		return id
	}
	return t.insert(idx, key, value)
}

// insert adds key to shard idx under the write lock, re-checking for a
// racing insert.
func (t *table) insert(idx uint64, key string, value func() any) ID {
	sh := &t.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[key]; ok {
		t.hits.Add(1)
		t.saved.Add(uint64(len(key)))
		return id
	}
	t.misses.Add(1)
	if sh.ids == nil {
		sh.ids = make(map[string]ID, 64)
	}
	id := ID(uint64(len(sh.entries))<<shardBits|idx) + 1
	sh.entries = append(sh.entries, value())
	sh.ids[key] = id
	return id
}

// resolve returns the stored value for id.
func (t *table) resolve(id ID) (any, bool) {
	if id == 0 {
		return nil, false
	}
	id--
	sh := &t.shards[id&(numShards-1)]
	slot := int(id >> shardBits)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if slot >= len(sh.entries) {
		return nil, false
	}
	return sh.entries[slot], true
}

// entryCount returns the total number of entries across shards.
func (t *table) entryCount() uint64 {
	var n uint64
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += uint64(len(t.shards[i].entries))
		t.shards[i].mu.RUnlock()
	}
	return n
}

var (
	strTable  = &table{name: "strings"}
	condTable = &table{name: "conds"}
	nodeTable = &table{name: "nodes"}
)

// keyBufPool recycles the scratch buffers used to encode intern keys.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// String interns a string (or any string-derived type, e.g. ctype.Symbol or
// tree.NodeID) and returns its stable ID.
func String[S ~string](s S) ID {
	return strTable.getStr(string(s), func() any { return string(s) })
}

// Bytes interns the string content of b without copying on the hit path.
func Bytes(b []byte) ID {
	return strTable.get(b, func() any { return string(b) })
}

// ResolveString returns the string with the given ID.
func ResolveString(id ID) (string, bool) {
	v, ok := strTable.resolve(id)
	if !ok {
		return "", false
	}
	return v.(string), true
}

// Cond interns a condition by its canonical interval-form key: logically
// equivalent conditions always intern to the same ID.
func Cond(c cond.Cond) ID {
	bp := keyBufPool.Get().(*[]byte)
	key := c.AppendKey((*bp)[:0])
	id := condTable.get(key, func() any { return c })
	*bp = key[:0]
	keyBufPool.Put(bp)
	return id
}

// ResolveCond returns a condition logically equal to the one interned as id.
func ResolveCond(id ID) (cond.Cond, bool) {
	v, ok := condTable.resolve(id)
	if !ok {
		return cond.Cond{}, false
	}
	return v.(cond.Cond), true
}

// Node hash-conses a tree node (recursively) and returns its ID together
// with the canonical representative. Equal subtrees — same ids, labels,
// values, and child multisets — share one representative, so repeated
// interning of equal trees costs no new memory and ID equality decides
// subtree equality. The input must not be mutated afterwards.
func Node(n *tree.Node) (ID, *tree.Node) {
	if n == nil {
		return 0, nil
	}
	kidIDs := make([]ID, len(n.Children))
	kids := make([]*tree.Node, len(n.Children))
	for i, c := range n.Children {
		kidIDs[i], kids[i] = Node(c)
	}
	// Children are unordered: sort the (id, child) pairs by id for a
	// canonical key.
	for i := 1; i < len(kidIDs); i++ {
		for j := i; j > 0 && kidIDs[j] < kidIDs[j-1]; j-- {
			kidIDs[j], kidIDs[j-1] = kidIDs[j-1], kidIDs[j]
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	bp := keyBufPool.Get().(*[]byte)
	key := (*bp)[:0]
	key = append(key, n.ID...)
	key = append(key, 0)
	key = append(key, n.Label...)
	key = append(key, 0)
	vk := n.Value.Key()
	key = appendU64(key, uint64(vk[0]))
	key = appendU64(key, uint64(vk[1]))
	for _, kid := range kidIDs {
		key = appendU64(key, uint64(kid))
	}
	id := nodeTable.get(key, func() any {
		return &tree.Node{ID: n.ID, Label: n.Label, Value: n.Value, Children: kids}
	})
	*bp = key[:0]
	keyBufPool.Put(bp)
	rep, _ := nodeTable.resolve(id)
	return id, rep.(*tree.Node)
}

// Tree hash-conses a whole data tree. The empty tree interns to ID 0.
func Tree(t tree.Tree) ID {
	id, _ := Node(t.Root)
	return id
}

// ResolveTree returns the canonical representative of an interned tree.
func ResolveTree(id ID) (tree.Tree, bool) {
	if id == 0 {
		return tree.Tree{}, true
	}
	v, ok := nodeTable.resolve(id)
	if !ok {
		return tree.Tree{}, false
	}
	return tree.Tree{Root: v.(*tree.Node)}, true
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// TableStats is a point-in-time snapshot of one intern table.
type TableStats struct {
	Table      string `json:"table"`
	Entries    uint64 `json:"entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	BytesSaved uint64 `json:"bytesSavedEstimate"`
}

// Stats snapshots all intern tables (strings, conds, nodes).
func Stats() []TableStats {
	out := make([]TableStats, 0, 3)
	for _, t := range []*table{strTable, condTable, nodeTable} {
		out = append(out, TableStats{
			Table:      t.name,
			Entries:    t.entryCount(),
			Hits:       t.hits.Load(),
			Misses:     t.misses.Load(),
			BytesSaved: t.saved.Load(),
		})
	}
	return out
}
