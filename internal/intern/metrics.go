package intern

import "incxml/internal/obs"

// Metrics exposition for the intern tables: func-backed views over the same
// atomics Stats() reads, one child per table, under the incxml_intern_*
// families. Entries only grow (tables are append-only), so the entries gauge
// doubles as a memory-pressure signal for the speed/memory trade-off
// documented in README.
func init() {
	d := obs.Default()
	hits := d.NewCounterVec("incxml_intern_hits_total",
		"Intern lookups that found an existing canonical representative, by table.", "table")
	misses := d.NewCounterVec("incxml_intern_misses_total",
		"Intern lookups that created a new entry, by table.", "table")
	saved := d.NewCounterVec("incxml_intern_bytes_saved_total",
		"Estimated bytes of re-interned value encodings shared instead of duplicated, by table.", "table")
	entries := d.NewGaugeVec("incxml_intern_entries",
		"Current entry count of an intern table (append-only), by table.", "table")
	for _, t := range []*table{strTable, condTable, nodeTable} {
		t := t
		hits.Func(t.hits.Load, t.name)
		misses.Func(t.misses.Load, t.name)
		saved.Func(t.saved.Load, t.name)
		entries.Func(func() float64 { return float64(t.entryCount()) }, t.name)
	}
}
