package reductions

import "incxml/internal/budget"

// SatisfiableBudgeted decides the formula by the same brute-force sweep as
// Satisfiable, but under a cooperative budget: it charges one step per
// assignment (plus one per clause evaluated) and returns Unknown with the
// budget's error if the sweep cannot finish. A definite Yes/No is always
// the oracle's answer — never a guess.
func (f Formula) SatisfiableBudgeted(bud *budget.B) (budget.Tri, error) {
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		if err := bud.Charge(1 + int64(len(f.Clauses))); err != nil {
			return budget.Unknown, err
		}
		if f.eval(mask) {
			return budget.Yes, nil
		}
	}
	return budget.No, nil
}

// ValidBudgeted decides DNF validity by the same brute-force sweep as
// Valid, under a cooperative budget; Unknown with the budget's error when
// the sweep cannot finish, the oracle's verdict otherwise.
func (d DNF) ValidBudgeted(bud *budget.B) (budget.Tri, error) {
	for mask := 0; mask < 1<<d.NumVars; mask++ {
		if err := bud.Charge(1 + int64(len(d.Disjuncts))); err != nil {
			return budget.Unknown, err
		}
		if !d.eval(mask) {
			return budget.No, nil
		}
	}
	return budget.Yes, nil
}
