package reductions

import "testing"

func dis(a, b, c Lit) Disjunct { return Disjunct{a, b, c} }

func TestDNFValidOracle(t *testing.T) {
	// x1 ∨ ¬x1 (padded to three literals) is valid.
	valid := DNF{NumVars: 1, Disjuncts: []Disjunct{
		dis(lit(1, false), lit(1, false), lit(1, false)),
		dis(lit(1, true), lit(1, true), lit(1, true)),
	}}
	if !valid.Valid() {
		t.Error("x ∨ ¬x reported invalid")
	}
	invalid := DNF{NumVars: 2, Disjuncts: []Disjunct{
		dis(lit(1, false), lit(2, false), lit(2, false)),
	}}
	if invalid.Valid() {
		t.Error("single positive disjunct reported valid")
	}
}

func TestDNFWorldsConsistent(t *testing.T) {
	d := DNF{NumVars: 2, Disjuncts: []Disjunct{
		dis(lit(1, false), lit(2, false), lit(2, false)),
		dis(lit(1, true), lit(1, true), lit(1, true)),
	}}
	inst, err := BuildDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.CheckWorlds(); err != nil {
		t.Fatal(err)
	}
	// A non-boolean world is NOT in q^{-1}(A): set x1 = 7.
	w := inst.World(0)
	w.Find("u1").Children[0].Value = v7()
	if got := inst.Q.Answer(w); got.Equal(inst.Answer) {
		t.Error("world with x=7 should change the answer (optional probe matches)")
	}
}

func TestDNFReduction(t *testing.T) {
	cases := []struct {
		name string
		d    DNF
	}{
		{"valid excluded middle", DNF{NumVars: 1, Disjuncts: []Disjunct{
			dis(lit(1, false), lit(1, false), lit(1, false)),
			dis(lit(1, true), lit(1, true), lit(1, true)),
		}}},
		{"invalid single conjunct", DNF{NumVars: 2, Disjuncts: []Disjunct{
			dis(lit(1, false), lit(2, false), lit(2, false)),
		}}},
		{"valid full cover on two vars", DNF{NumVars: 2, Disjuncts: []Disjunct{
			dis(lit(1, false), lit(1, false), lit(1, false)),
			dis(lit(1, true), lit(2, false), lit(2, false)),
			dis(lit(1, true), lit(2, true), lit(2, true)),
		}}},
		{"invalid near-cover", DNF{NumVars: 2, Disjuncts: []Disjunct{
			dis(lit(1, false), lit(1, false), lit(1, false)),
			dis(lit(1, true), lit(2, false), lit(2, false)),
		}}},
	}
	for _, c := range cases {
		inst, err := BuildDNF(c.d)
		if err != nil {
			t.Fatal(err)
		}
		got := inst.Decide()
		want := c.d.Valid()
		if got != want {
			t.Errorf("%s: certain-prefix = %v, valid = %v", c.name, got, want)
		}
	}
}

func TestBuildDNFValidation(t *testing.T) {
	if _, err := BuildDNF(DNF{NumVars: 0}); err == nil {
		t.Error("DNF without variables accepted")
	}
	bad := DNF{NumVars: 1, Disjuncts: []Disjunct{dis(lit(3, false), lit(1, false), lit(1, false))}}
	if _, err := BuildDNF(bad); err == nil {
		t.Error("out-of-range literal accepted")
	}
}
