package reductions

import (
	"fmt"

	"incxml/internal/cond"
	"incxml/internal/dtd"
	"incxml/internal/extquery"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// Disjunct is one conjunction of three literals in a DNF formula.
type Disjunct [3]Lit

// DNF is a disjunctive-normal-form formula with three literals per
// disjunct.
type DNF struct {
	NumVars   int
	Disjuncts []Disjunct
}

// Valid decides validity by brute force (the Theorem 4.1 oracle).
func (d DNF) Valid() bool {
	for mask := 0; mask < 1<<d.NumVars; mask++ {
		if !d.eval(mask) {
			return false
		}
	}
	return true
}

func (d DNF) eval(mask int) bool {
	for _, dis := range d.Disjuncts {
		ok := true
		for _, l := range dis {
			val := mask>>(l.Var-1)&1 == 1
			if val != l.Neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// DNFInstance is the Theorem 4.1 construction: an input tree type, a
// query-answer pair ⟨q, A⟩ with branching and optional subtrees, a second
// query q′, and a candidate tree T such that T is a certain prefix of
// q′[rep(τ) ∩ q⁻¹(A)] iff the formula is valid.
type DNFInstance struct {
	Formula DNF
	Type    *dtd.Type
	// Q is the branching+optional observation query; Answer its answer.
	Q      extquery.Query
	Answer tree.Tree
	// QPrime is the certain-prefix query with one optional val subtree per
	// disjunct.
	QPrime extquery.Query
	// Candidate is the tree root(val) whose certainty equals validity.
	Candidate tree.Tree
}

// BuildDNF constructs the Theorem 4.1 instance.
func BuildDNF(d DNF) (*DNFInstance, error) {
	if d.NumVars < 1 {
		return nil, fmt.Errorf("reductions: DNF needs at least one variable")
	}
	for _, dis := range d.Disjuncts {
		for _, l := range dis {
			if l.Var < 1 || l.Var > d.NumVars {
				return nil, fmt.Errorf("reductions: literal variable %d out of range", l.Var)
			}
		}
	}
	ty := dtd.MustParse(`
root: root
root -> val
val  -> var*
var  -> x
`)
	inst := &DNFInstance{Formula: d, Type: ty}

	// q: root(val(var, var=1..n with x ∉ {0,1} optional — the single
	// required var child plus one optional probe)). The paper's q uses one
	// required var (capturing all representatives by valuation union) and an
	// optional var(x ≠ 0,1) probe whose absence from A certifies Boolean
	// values.
	not01 := cond.NeInt(0).And(cond.NeInt(1))
	inst.Q = extquery.Query{Root: extquery.N("root", cond.True(),
		extquery.N("val", cond.True(),
			extquery.N("var", cond.True()),
			extquery.Optional(extquery.N("var", cond.True(),
				extquery.N("x", not01)))))}

	// A: root(val(var=1 ... var=n)) — one representative per variable, no x
	// nodes (so every x is 0 or 1).
	val := tree.NewID("v", "val", rat.Zero)
	for i := 1; i <= d.NumVars; i++ {
		val.Children = append(val.Children,
			tree.NewID(tree.NodeID(fmt.Sprintf("u%d", i)), "var", rat.FromInt(int64(i))))
	}
	inst.Answer = tree.Tree{Root: tree.NewID("r", "root", rat.Zero, val)}

	// q′: root with one optional val subtree per disjunct, each demanding
	// the disjunct's three literals to hold.
	qprime := extquery.N("root", cond.True())
	for _, dis := range d.Disjuncts {
		valPat := extquery.N("val", cond.True())
		for _, l := range dis {
			want := int64(1)
			if l.Neg {
				want = 0
			}
			valPat.Children = append(valPat.Children,
				extquery.N("var", cond.EqInt(int64(l.Var)),
					extquery.N("x", cond.EqInt(want))))
		}
		qprime.Children = append(qprime.Children, extquery.Optional(valPat))
	}
	inst.QPrime = extquery.Query{Root: qprime}

	inst.Candidate = tree.Tree{Root: tree.New("root", rat.Zero,
		tree.New("val", rat.Zero))}
	return inst, nil
}

// World builds the member of rep(τ) ∩ q⁻¹(A) for one variable assignment.
func (inst *DNFInstance) World(mask int) tree.Tree {
	val := tree.NewID("v", "val", rat.Zero)
	for i := 1; i <= inst.Formula.NumVars; i++ {
		bit := int64(mask >> (i - 1) & 1)
		val.Children = append(val.Children,
			tree.NewID(tree.NodeID(fmt.Sprintf("u%d", i)), "var", rat.FromInt(int64(i)),
				tree.New("x", rat.FromInt(bit))))
	}
	return tree.Tree{Root: tree.NewID("r", "root", rat.Zero, val)}
}

// Decide answers the certain-prefix question by enumerating the worlds of
// rep(τ) ∩ q⁻¹(A) — one per assignment — and testing whether the candidate
// is a prefix of every q′-answer. Exponential in the number of variables,
// which is Theorem 4.1's point.
func (inst *DNFInstance) Decide() bool {
	for mask := 0; mask < 1<<inst.Formula.NumVars; mask++ {
		w := inst.World(mask)
		ans := inst.QPrime.Answer(w)
		if !inst.Candidate.IsPrefixOf(ans, nil) {
			return false
		}
	}
	return true
}

// CheckWorlds verifies that every assignment world is in rep(τ) ∩ q⁻¹(A):
// it conforms to the type and answers A on q. Returns the first violation.
func (inst *DNFInstance) CheckWorlds() error {
	for mask := 0; mask < 1<<inst.Formula.NumVars; mask++ {
		w := inst.World(mask)
		if err := inst.Type.Validate(w); err != nil {
			return fmt.Errorf("world %d: %v", mask, err)
		}
		got := inst.Q.Answer(w)
		if !got.Equal(inst.Answer) {
			return fmt.Errorf("world %d: q answer mismatch:\n%s", mask, got)
		}
	}
	return nil
}
