package reductions

import (
	"fmt"

	"incxml/internal/cond"
	"incxml/internal/dtd"
	"incxml/internal/extquery"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// FD is a functional dependency Lhs → Rhs over attribute indices (1-based).
type FD struct {
	Lhs []int
	Rhs int
}

// IND is an inclusion dependency R[Lhs] ⊆ R[Rhs] over attribute indices.
type IND struct {
	Lhs []int
	Rhs []int
}

// Dependency is an FD or an IND.
type Dependency struct {
	FD  *FD
	IND *IND
}

// FDINDInstance is the Theorem 4.5 construction: a (nonrecursive) tree type
// encoding a relation, one violation query per dependency in Σ, and a
// violation query for σ, such that Σ ⊨ σ iff q_σ is empty on every tree in
// rep(τ) ∩ ⋂ q_ϕ⁻¹(∅).
type FDINDInstance struct {
	NumAttrs int
	Sigma    []Dependency
	Target   FD
	Type     *dtd.Type
	// SigmaQueries are the violation detectors for Σ (empty answers assert
	// that the dependencies hold).
	SigmaQueries []extquery.Query
	// TargetQuery detects violations of σ.
	TargetQuery extquery.Query
}

// attr returns the label of the i-th attribute.
func attr(i int) tree.Label { return tree.Label(fmt.Sprintf("A%d", i)) }

// fdQuery builds q_ϕ for an FD per the Theorem 4.5 proof: two tuples
// agreeing on the determinant and disagreeing on the dependent attribute.
func fdQuery(fd FD) extquery.Query {
	t1 := extquery.N("tuple", cond.True())
	t2 := extquery.N("tuple", cond.True())
	for k, a := range fd.Lhs {
		x := fmt.Sprintf("X%d", k)
		t1.Children = append(t1.Children, extquery.V(attr(a), x))
		t2.Children = append(t2.Children, extquery.V(attr(a), x))
	}
	t1.Children = append(t1.Children, extquery.V(attr(fd.Rhs), "Z"))
	t2.Children = append(t2.Children, extquery.V(attr(fd.Rhs), "W"))
	return extquery.Query{
		Root:  extquery.N("root", cond.True(), t1, t2),
		Diseq: [][2]string{{"Z", "W"}},
	}
}

// indQuery builds q_ϕ for an IND: a tuple whose Lhs projection appears in
// no tuple's Rhs projection (negation).
func indQuery(ind IND) extquery.Query {
	pos := extquery.N("tuple", cond.True())
	neg := extquery.N("tuple", cond.True())
	for k := range ind.Lhs {
		x := fmt.Sprintf("X%d", k)
		pos.Children = append(pos.Children, extquery.V(attr(ind.Lhs[k]), x))
		neg.Children = append(neg.Children, extquery.V(attr(ind.Rhs[k]), x))
	}
	return extquery.Query{Root: extquery.N("root", cond.True(),
		pos, extquery.Negated(neg))}
}

// BuildFDIND constructs the Theorem 4.5 instance.
func BuildFDIND(numAttrs int, sigma []Dependency, target FD) (*FDINDInstance, error) {
	check := func(a int) error {
		if a < 1 || a > numAttrs {
			return fmt.Errorf("reductions: attribute %d out of range", a)
		}
		return nil
	}
	for _, d := range sigma {
		switch {
		case d.FD != nil:
			for _, a := range d.FD.Lhs {
				if err := check(a); err != nil {
					return nil, err
				}
			}
			if err := check(d.FD.Rhs); err != nil {
				return nil, err
			}
		case d.IND != nil:
			if len(d.IND.Lhs) != len(d.IND.Rhs) {
				return nil, fmt.Errorf("reductions: IND arity mismatch")
			}
			for _, a := range append(append([]int{}, d.IND.Lhs...), d.IND.Rhs...) {
				if err := check(a); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("reductions: empty dependency")
		}
	}
	src := "root: root\nroot -> tuple*\ntuple ->"
	for i := 1; i <= numAttrs; i++ {
		src += " " + string(attr(i))
	}
	inst := &FDINDInstance{
		NumAttrs: numAttrs,
		Sigma:    sigma,
		Target:   target,
		Type:     dtd.MustParse(src + "\n"),
	}
	for _, d := range sigma {
		if d.FD != nil {
			inst.SigmaQueries = append(inst.SigmaQueries, fdQuery(*d.FD))
		} else {
			inst.SigmaQueries = append(inst.SigmaQueries, indQuery(*d.IND))
		}
	}
	inst.TargetQuery = fdQuery(target)
	return inst, nil
}

// EncodeRelation builds the tree encoding of a relation instance (rows of
// numAttrs values each).
func (inst *FDINDInstance) EncodeRelation(rows [][]int64) (tree.Tree, error) {
	root := tree.New("root", rat.Zero)
	for _, row := range rows {
		if len(row) != inst.NumAttrs {
			return tree.Tree{}, fmt.Errorf("reductions: row arity %d, want %d", len(row), inst.NumAttrs)
		}
		tup := tree.New("tuple", rat.Zero)
		for i, v := range row {
			tup.Children = append(tup.Children, tree.New(attr(i+1), rat.FromInt(v)))
		}
		root.Children = append(root.Children, tup)
	}
	return tree.Tree{Root: root}, nil
}

// SatisfiesSigma reports whether the relation tree satisfies every
// dependency of Σ — i.e. every q_ϕ has an empty answer.
func (inst *FDINDInstance) SatisfiesSigma(t tree.Tree) bool {
	for _, q := range inst.SigmaQueries {
		if q.Matches(t) {
			return false
		}
	}
	return true
}

// ViolatesTarget reports whether q_σ has a nonempty answer on the tree.
func (inst *FDINDInstance) ViolatesTarget(t tree.Tree) bool {
	return inst.TargetQuery.Matches(t)
}

// DecideBounded searches relations of at most maxRows rows over the value
// domain 0..domain-1 for a Σ-satisfying instance violating σ. It returns
// true ("implied over the bounded universe") when none exists. For FD-only
// Σ this is exact once maxRows ≥ 2 and the domain has ≥ 2 values, because
// FD implication has two-tuple counterexamples; with INDs the general
// problem is undecidable (Theorem 4.5) and this is only a bounded check.
func (inst *FDINDInstance) DecideBounded(maxRows int, domain int64) (bool, error) {
	var rows [][]int64
	var rec func(depth int) (bool, error)
	total := 1
	for i := 0; i < inst.NumAttrs; i++ {
		total *= int(domain)
	}
	tuples := make([][]int64, 0, total)
	var gen func(row []int64)
	gen = func(row []int64) {
		if len(row) == inst.NumAttrs {
			tuples = append(tuples, append([]int64{}, row...))
			return
		}
		for v := int64(0); v < domain; v++ {
			gen(append(row, v))
		}
	}
	gen(nil)
	rec = func(depth int) (bool, error) {
		if len(rows) > 0 {
			t, err := inst.EncodeRelation(rows)
			if err != nil {
				return false, err
			}
			if inst.SatisfiesSigma(t) && inst.ViolatesTarget(t) {
				return false, nil // counterexample found
			}
		}
		if depth == maxRows {
			return true, nil
		}
		for _, tup := range tuples {
			rows = append(rows, tup)
			ok, err := rec(depth + 1)
			rows = rows[:len(rows)-1]
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// FDImplies decides Σ ⊨ σ for FD-only Σ via attribute closure — the exact
// oracle the bounded reduction check is compared against.
func FDImplies(numAttrs int, sigma []FD, target FD) bool {
	closure := map[int]bool{}
	for _, a := range target.Lhs {
		closure[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range sigma {
			all := true
			for _, a := range fd.Lhs {
				if !closure[a] {
					all = false
					break
				}
			}
			if all && !closure[fd.Rhs] {
				closure[fd.Rhs] = true
				changed = true
			}
		}
	}
	return closure[target.Rhs]
}
