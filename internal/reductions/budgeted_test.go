package reductions

import (
	"errors"
	"math/rand"
	"testing"

	"incxml/internal/budget"
)

func randomFormula(r *rand.Rand) Formula {
	nv := 2 + r.Intn(6)
	f := Formula{NumVars: nv}
	for i := 0; i < 1+r.Intn(8); i++ {
		var c Clause
		for j := 0; j < 1+r.Intn(3); j++ {
			c = append(c, Lit{Var: 1 + r.Intn(nv), Neg: r.Intn(2) == 0})
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func randomDNF(r *rand.Rand) DNF {
	nv := 2 + r.Intn(6)
	d := DNF{NumVars: nv}
	for i := 0; i < 1+r.Intn(8); i++ {
		var dis Disjunct
		for j := range dis {
			dis[j] = Lit{Var: 1 + r.Intn(nv), Neg: r.Intn(2) == 0}
		}
		d.Disjuncts = append(d.Disjuncts, dis)
	}
	return d
}

// TestSatisfiableBudgetedDifferential pins the budgeted 3-SAT decider
// against the brute-force oracle on random formulas: ample budgets must
// reproduce the oracle exactly, starvation budgets may only say Unknown.
func TestSatisfiableBudgetedDifferential(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r)
		want := budget.Of(f.Satisfiable())

		got, err := f.SatisfiableBudgeted(budget.New(nil, 1<<24))
		if err != nil || got != want {
			t.Fatalf("seed %d: ample budget: got %v (%v), oracle %v", seed, got, err, want)
		}

		for _, steps := range []int64{1, 2, 5, 11} {
			tri, err := f.SatisfiableBudgeted(budget.New(nil, steps))
			if tri.Known() {
				if tri != want {
					t.Fatalf("seed %d steps %d: definite %v contradicts oracle %v", seed, steps, tri, want)
				}
			} else if !errors.Is(err, budget.ErrExhausted) {
				t.Fatalf("seed %d steps %d: Unknown without budget error: %v", seed, steps, err)
			}
		}
	}
}

// TestValidBudgetedDifferential is the same pinning for the Theorem 4.1
// DNF-validity decider.
func TestValidBudgetedDifferential(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := randomDNF(r)
		want := budget.Of(d.Valid())

		got, err := d.ValidBudgeted(budget.New(nil, 1<<24))
		if err != nil || got != want {
			t.Fatalf("seed %d: ample budget: got %v (%v), oracle %v", seed, got, err, want)
		}

		for _, steps := range []int64{1, 2, 5, 11} {
			tri, err := d.ValidBudgeted(budget.New(nil, steps))
			if tri.Known() {
				if tri != want {
					t.Fatalf("seed %d steps %d: definite %v contradicts oracle %v", seed, steps, tri, want)
				}
			} else if !errors.Is(err, budget.ErrExhausted) {
				t.Fatalf("seed %d steps %d: Unknown without budget error: %v", seed, steps, err)
			}
		}
	}
}
