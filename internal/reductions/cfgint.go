package reductions

import (
	"fmt"

	"incxml/internal/cfg"
	"incxml/internal/cond"
	"incxml/internal/extquery"
	"incxml/internal/pathre"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// CFGIntInstance is the Theorem 4.7 construction for two ε-free grammars
// over {a, b}: an input type whose trees pair a G1-derivation with a
// G2-derivation, terminal leaves carrying val1/val2 successor indices;
// queries q1..qn (recursive path expressions + data joins) whose emptiness
// forces well-formed, equal-length, identically-indexed encodings; and a
// query Q that is empty exactly when the two encoded words are equal.
type CFGIntInstance struct {
	// G1 and G2 are the occurrence-normalized CNF grammars, with
	// nonterminals renamed apart ("g1:"/"g2:" prefixes).
	G1, G2 *cfg.Grammar
	// WellFormedQueries are q1..qn: all must be empty on a valid encoding.
	WellFormedQueries []extquery.Query
	// DiffQuery is q: empty iff the encoded words are equal.
	DiffQuery extquery.Query
}

// prefixGrammar renames every nonterminal with the given prefix; terminals
// are shared.
func prefixGrammar(g *cfg.Grammar, prefix string) *cfg.Grammar {
	ren := func(s cfg.Symbol) cfg.Symbol {
		if g.Terminals[s] {
			return s
		}
		return cfg.Symbol(prefix + string(s))
	}
	out := cfg.New(ren(g.Start))
	for t := range g.Terminals {
		out.Terminals[t] = true
	}
	for _, p := range g.Prods {
		rhs := make([]cfg.Symbol, len(p.Rhs))
		for i, s := range p.Rhs {
			rhs[i] = ren(s)
		}
		out.Add(ren(p.Lhs), rhs...)
	}
	return out
}

// BuildCFGIntersection normalizes the grammars (CNF + occurrence splitting
// + renaming apart) and constructs the queries of the Theorem 4.7 proof.
func BuildCFGIntersection(g1, g2 *cfg.Grammar) (*CFGIntInstance, error) {
	prep := func(g *cfg.Grammar, prefix string) (*cfg.Grammar, error) {
		cnf, err := g.ToCNF()
		if err != nil {
			return nil, err
		}
		norm, err := cnf.NormalizeOccurrences()
		if err != nil {
			return nil, err
		}
		if err := norm.CheckOccurrences(); err != nil {
			return nil, err
		}
		return prefixGrammar(norm, prefix), nil
	}
	n1, err := prep(g1, "g1:")
	if err != nil {
		return nil, fmt.Errorf("reductions: grammar 1: %v", err)
	}
	n2, err := prep(g2, "g2:")
	if err != nil {
		return nil, fmt.Errorf("reductions: grammar 2: %v", err)
	}
	inst := &CFGIntInstance{G1: n1, G2: n2}

	s1 := tree.Label(n1.Start)
	s2 := tree.Label(n2.Start)
	tTrue := cond.True()

	// l_i(S_i) paths end at the leftmost terminal; the val nodes are its
	// children.
	l1 := n1.LeftPath(n1.Start)
	r1 := n1.RightPath(n1.Start)
	l2 := n2.LeftPath(n2.Start)
	r2 := n2.RightPath(n2.Start)

	// (1a) The leftmost data value of S1 is minimal: it never occurs as a
	// val2 anywhere.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.N(s1, tTrue,
				extquery.OnPath(extquery.V("val1", "X"),
					pathre.Concat(l1, pathre.Sym("val1")))),
			extquery.OnPath(extquery.V("val2", "X"), pathre.AnyStar())),
	})
	// Same for S2.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.N(s2, tTrue,
				extquery.OnPath(extquery.V("val1", "X"),
					pathre.Concat(l2, pathre.Sym("val1")))),
			extquery.OnPath(extquery.V("val2", "X"), pathre.AnyStar())),
	})

	// (1b) Sibling val1 and val2 differ (an element is not its own
	// successor), for each side.
	for _, s := range []tree.Label{s1, s2} {
		inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
			Root: extquery.N("root", tTrue,
				extquery.OnPath(
					extquery.N("", tTrue,
						extquery.V("val1", "X"),
						extquery.V("val2", "X")),
					pathre.Concat(pathre.Sym(s), pathre.AnyStar()))),
		})
	}

	// (1c) Distinct elements have distinct successors.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.OnPath(extquery.N("", tTrue,
				extquery.V("val1", "X"), extquery.V("val2", "Y")), pathre.AnyStar()),
			extquery.OnPath(extquery.N("", tTrue,
				extquery.V("val1", "Z"), extquery.V("val2", "Y")), pathre.AnyStar())),
		Diseq: [][2]string{{"X", "Z"}},
	})

	// (1d) Adjacency: for each binary production A → BC, the rightmost val2
	// under B equals the leftmost val1 under C.
	addAdjacency := func(g *cfg.Grammar) {
		for _, p := range g.Prods {
			if len(p.Rhs) != 2 {
				continue
			}
			b, c := p.Rhs[0], p.Rhs[1]
			rb := g.RightPath(b)
			lc := g.LeftPath(c)
			inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
				Root: extquery.N("root", tTrue,
					extquery.OnPath(extquery.N(tree.Label(p.Lhs), tTrue,
						extquery.N(tree.Label(b), tTrue,
							extquery.OnPath(extquery.V("val2", "X"),
								pathre.Concat(rb, pathre.Sym("val2")))),
						extquery.N(tree.Label(c), tTrue,
							extquery.OnPath(extquery.V("val1", "Y"),
								pathre.Concat(lc, pathre.Sym("val1"))))),
						pathre.Concat(pathre.AnyStar(), pathre.Sym(tree.Label(p.Lhs))))),
				Diseq: [][2]string{{"X", "Y"}},
			})
		}
	}
	addAdjacency(n1)
	addAdjacency(n2)

	// (2a) The leftmost values of S1 and S2 coincide.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.N(s1, tTrue,
				extquery.OnPath(extquery.V("val1", "X"), pathre.Concat(l1, pathre.Sym("val1")))),
			extquery.N(s2, tTrue,
				extquery.OnPath(extquery.V("val1", "Y"), pathre.Concat(l2, pathre.Sym("val1"))))),
		Diseq: [][2]string{{"X", "Y"}},
	})
	// (2b) The rightmost values coincide.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.N(s1, tTrue,
				extquery.OnPath(extquery.V("val2", "X"), pathre.Concat(r1, pathre.Sym("val2")))),
			extquery.N(s2, tTrue,
				extquery.OnPath(extquery.V("val2", "Y"), pathre.Concat(r2, pathre.Sym("val2"))))),
		Diseq: [][2]string{{"X", "Y"}},
	})
	// (2c) Same val1 implies same val2 across the two trees.
	inst.WellFormedQueries = append(inst.WellFormedQueries, extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.N(s1, tTrue,
				extquery.OnPath(extquery.N("", tTrue,
					extquery.V("val1", "X"), extquery.V("val2", "Y")), pathre.AnyStar())),
			extquery.N(s2, tTrue,
				extquery.OnPath(extquery.N("", tTrue,
					extquery.V("val1", "X"), extquery.V("val2", "Z")), pathre.AnyStar()))),
		Diseq: [][2]string{{"Y", "Z"}},
	})

	// Q: some index carries terminal a in one word and b in the other.
	inst.DiffQuery = extquery.Query{
		Root: extquery.N("root", tTrue,
			extquery.OnPath(extquery.N("a", tTrue, extquery.V("val1", "X")),
				pathre.Concat(pathre.AnyStar(), pathre.Sym("a"))),
			extquery.OnPath(extquery.N("b", tTrue, extquery.V("val1", "X")),
				pathre.Concat(pathre.AnyStar(), pathre.Sym("b")))),
	}
	return inst, nil
}

// EncodeWords builds the encoding tree for a pair of terminal words:
// root(S1-derivation, S2-derivation) with terminal leaves decorated by
// val1/val2 successor indices (position i gets val1 = i, val2 = i+1).
// The words must be derivable in the respective grammars.
func (inst *CFGIntInstance) EncodeWords(w1, w2 []cfg.Symbol) (tree.Tree, error) {
	d1, ok := inst.G1.Derivation(w1)
	if !ok {
		return tree.Tree{}, fmt.Errorf("reductions: %v not in L(G1)", w1)
	}
	d2, ok := inst.G2.Derivation(w2)
	if !ok {
		return tree.Tree{}, fmt.Errorf("reductions: %v not in L(G2)", w2)
	}
	decorate := func(d tree.Tree) {
		pos := int64(0)
		var rec func(n *tree.Node)
		rec = func(n *tree.Node) {
			if len(n.Children) == 0 {
				pos++
				n.Children = append(n.Children,
					tree.New("val1", rat.FromInt(pos)),
					tree.New("val2", rat.FromInt(pos+1)))
				return
			}
			for _, c := range n.Children {
				rec(c)
			}
		}
		rec(d.Root)
	}
	decorate(d1)
	decorate(d2)
	root := tree.New("root", rat.Zero, d1.Root, d2.Root)
	return tree.Tree{Root: root}, nil
}

// WellFormed reports whether every well-formedness query is empty on t.
func (inst *CFGIntInstance) WellFormed(t tree.Tree) bool {
	for _, q := range inst.WellFormedQueries {
		if q.Matches(t) {
			return false
		}
	}
	return true
}

// WordsEqual reports whether the diff query is empty on t (the encoded
// words coincide).
func (inst *CFGIntInstance) WordsEqual(t tree.Tree) bool {
	return !inst.DiffQuery.Matches(t)
}

// SearchIntersection performs the (semi-decidable) search underlying the
// undecidability argument: it enumerates word pairs up to maxLen and
// reports a witness of L(G1) ∩ L(G2) ≠ ∅ — i.e. a well-formed encoding on
// which the diff query is empty. Bounded, so absence of a witness proves
// nothing (Theorem 4.7's point).
func (inst *CFGIntInstance) SearchIntersection(maxLen, maxWords int) ([]cfg.Symbol, bool) {
	w1s := inst.G1.Words(maxLen, maxWords)
	w2s := inst.G2.Words(maxLen, maxWords)
	for _, w1 := range w1s {
		for _, w2 := range w2s {
			if len(w1) != len(w2) {
				continue
			}
			t, err := inst.EncodeWords(w1, w2)
			if err != nil {
				continue
			}
			if inst.WellFormed(t) && inst.WordsEqual(t) {
				return w1, true
			}
		}
	}
	return nil, false
}
