package reductions

import (
	"testing"

	"incxml/internal/rat"
)

// v7 is a helper used by dnf_test as well.
func v7() rat.Rat { return rat.FromInt(7) }

func TestFDQuerySemantics(t *testing.T) {
	inst, err := BuildFDIND(3,
		[]Dependency{{FD: &FD{Lhs: []int{1}, Rhs: 2}}},
		FD{Lhs: []int{1}, Rhs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A1 -> A2 holds, A1 -> A3 violated.
	rel, err := inst.EncodeRelation([][]int64{
		{1, 5, 7},
		{1, 5, 8},
		{2, 6, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.SatisfiesSigma(rel) {
		t.Error("Σ = {A1→A2} should hold on the instance")
	}
	if !inst.ViolatesTarget(rel) {
		t.Error("A1→A3 violation not detected")
	}
	// Without the violating row, the target holds.
	rel2, _ := inst.EncodeRelation([][]int64{{1, 5, 7}, {2, 6, 9}})
	if inst.ViolatesTarget(rel2) {
		t.Error("A1→A3 spuriously violated")
	}
}

func TestINDQuerySemantics(t *testing.T) {
	inst, err := BuildFDIND(2,
		[]Dependency{{IND: &IND{Lhs: []int{1}, Rhs: []int{2}}}},
		FD{Lhs: []int{1}, Rhs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// R[A1] ⊆ R[A2] holds: A1 values {1,2}, A2 values {1,2}.
	ok, _ := inst.EncodeRelation([][]int64{{1, 2}, {2, 1}})
	if !inst.SatisfiesSigma(ok) {
		t.Error("satisfied IND reported violated")
	}
	// Violated: A1 value 3 not in A2 column.
	bad, _ := inst.EncodeRelation([][]int64{{3, 1}, {1, 1}})
	if inst.SatisfiesSigma(bad) {
		t.Error("violated IND reported satisfied")
	}
}

func TestFDINDReductionAgainstClosure(t *testing.T) {
	cases := []struct {
		name     string
		numAttrs int
		sigma    []FD
		target   FD
	}{
		{"transitive implied", 3,
			[]FD{{Lhs: []int{1}, Rhs: 2}, {Lhs: []int{2}, Rhs: 3}},
			FD{Lhs: []int{1}, Rhs: 3}},
		{"not implied", 3,
			[]FD{{Lhs: []int{1}, Rhs: 2}},
			FD{Lhs: []int{1}, Rhs: 3}},
		{"reflexive-ish implied", 2,
			[]FD{},
			FD{Lhs: []int{1, 2}, Rhs: 2}},
		{"symmetric not implied", 2,
			[]FD{{Lhs: []int{1}, Rhs: 2}},
			FD{Lhs: []int{2}, Rhs: 1}},
	}
	for _, c := range cases {
		var deps []Dependency
		for i := range c.sigma {
			deps = append(deps, Dependency{FD: &c.sigma[i]})
		}
		inst, err := BuildFDIND(c.numAttrs, deps, c.target)
		if err != nil {
			t.Fatal(err)
		}
		// FD implication has 2-tuple counterexamples over a 2-value domain,
		// so the bounded check is exact here.
		got, err := inst.DecideBounded(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := FDImplies(c.numAttrs, c.sigma, c.target)
		if got != want {
			t.Errorf("%s: bounded reduction = %v, closure oracle = %v", c.name, got, want)
		}
	}
}

func TestFDINDWithINDBoundedCheck(t *testing.T) {
	// Σ = {A1→A2, R[A2] ⊆ R[A1]}; target A2→A1 is NOT implied (counterexample
	// exists with 2 tuples: (0,1),(1,1) satisfies A1→A2; A2 col {1} ⊆ A1 col
	// {0,1}; but A2→A1 violated).
	inst, err := BuildFDIND(2,
		[]Dependency{
			{FD: &FD{Lhs: []int{1}, Rhs: 2}},
			{IND: &IND{Lhs: []int{2}, Rhs: []int{1}}},
		},
		FD{Lhs: []int{2}, Rhs: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.DecideBounded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("bounded check missed the 2-tuple counterexample")
	}
}

func TestBuildFDINDValidation(t *testing.T) {
	if _, err := BuildFDIND(2, []Dependency{{FD: &FD{Lhs: []int{5}, Rhs: 1}}}, FD{Lhs: []int{1}, Rhs: 2}); err == nil {
		t.Error("out-of-range FD attribute accepted")
	}
	if _, err := BuildFDIND(2, []Dependency{{IND: &IND{Lhs: []int{1}, Rhs: []int{1, 2}}}}, FD{Lhs: []int{1}, Rhs: 2}); err == nil {
		t.Error("IND arity mismatch accepted")
	}
	if _, err := BuildFDIND(2, []Dependency{{}}, FD{Lhs: []int{1}, Rhs: 2}); err == nil {
		t.Error("empty dependency accepted")
	}
}
