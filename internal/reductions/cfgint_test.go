package reductions

import (
	"testing"

	"incxml/internal/cfg"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// anbn is a^n b^n; anb2n is a^n b^2n. Their intersection is empty; a^n b^n
// vs (a|b)^+ intersects.
const anbnSrc = `
start: S
S -> a b | a S1
S1 -> S b
`

const abPlusSrc = `
start: P
P -> a | b | a P | b P
`

const anb2nSrc = `
start: D
D -> a b b | a D1
D1 -> D b b
`

func csyms(ss ...string) []cfg.Symbol {
	out := make([]cfg.Symbol, len(ss))
	for i, s := range ss {
		out[i] = cfg.Symbol(s)
	}
	return out
}

func TestCFGEncodingWellFormed(t *testing.T) {
	inst, err := BuildCFGIntersection(cfg.MustParse(anbnSrc), cfg.MustParse(abPlusSrc))
	if err != nil {
		t.Fatal(err)
	}
	// A valid same-length pair: encoding must be well-formed.
	enc, err := inst.EncodeWords(csyms("a", "b"), csyms("b", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.WellFormed(enc) {
		for i, q := range inst.WellFormedQueries {
			if q.Matches(enc) {
				t.Fatalf("well-formed encoding rejected by query %d", i)
			}
		}
	}
	// The words differ, so the diff query fires.
	if inst.WordsEqual(enc) {
		t.Error("different words reported equal")
	}
	// Equal words: diff query silent.
	enc2, err := inst.EncodeWords(csyms("a", "b"), csyms("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.WellFormed(enc2) {
		t.Error("equal-word encoding rejected as ill-formed")
	}
	if !inst.WordsEqual(enc2) {
		t.Error("equal words reported different")
	}
}

func TestCFGIllFormedEncodingsDetected(t *testing.T) {
	inst, err := BuildCFGIntersection(cfg.MustParse(anbnSrc), cfg.MustParse(abPlusSrc))
	if err != nil {
		t.Fatal(err)
	}
	// Different lengths: the indexing queries must catch it (rightmost
	// values differ).
	enc, err := inst.EncodeWords(csyms("a", "a", "b", "b"), csyms("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if inst.WellFormed(enc) {
		t.Error("length-mismatched encoding accepted as well-formed")
	}
	// Corrupted successor chain: break a val2 value.
	enc2, err := inst.EncodeWords(csyms("a", "b"), csyms("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	// Find a val2 node and corrupt it to equal its sibling val1.
	corrupted := enc2.Clone()
	done := false
	corrupted.Walk(func(n *tree.Node) {
		if done || n.Label != "val2" {
			return
		}
		n.Value = n.Value.Sub(rat.One)
		done = true
	})
	if !done {
		t.Fatal("no val2 node found")
	}
	if inst.WellFormed(corrupted) {
		t.Error("corrupted successor chain accepted as well-formed")
	}
}

func TestCFGSearchIntersection(t *testing.T) {
	// a^n b^n vs (a|b)^+ : nonempty intersection (witness "ab").
	inst, err := BuildCFGIntersection(cfg.MustParse(anbnSrc), cfg.MustParse(abPlusSrc))
	if err != nil {
		t.Fatal(err)
	}
	w, found := inst.SearchIntersection(4, 50)
	if !found {
		t.Fatal("intersection witness not found")
	}
	if !inst.G1.Member(w) || !inst.G2.Member(w) {
		t.Errorf("witness %v not in both languages", w)
	}
	// a^n b^n vs a^n b^2n: empty intersection; bounded search finds nothing.
	inst2, err := BuildCFGIntersection(cfg.MustParse(anbnSrc), cfg.MustParse(anb2nSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := inst2.SearchIntersection(6, 50); found {
		t.Error("witness found for empty intersection")
	}
}

func TestCFGPathQueriesMatchDerivations(t *testing.T) {
	// The l/r paths used in the queries really reach the leftmost/rightmost
	// terminals: already covered in cfg tests; here check end-to-end that a
	// single-word self-pair is always well-formed for several words.
	inst, err := BuildCFGIntersection(cfg.MustParse(anbnSrc), cfg.MustParse(anbnSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range inst.G1.Words(6, 10) {
		enc, err := inst.EncodeWords(w, w)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.WellFormed(enc) {
			t.Errorf("self-pair %v rejected as ill-formed", w)
		}
		if !inst.WordsEqual(enc) {
			t.Errorf("self-pair %v reported different", w)
		}
	}
}
