// Package reductions implements the paper's hardness and undecidability
// constructions as executable artifacts, each paired with a verifier
// against a ground-truth oracle:
//
//   - Theorem 3.6: 3-SAT → possible-prefix over a query-answer sequence
//     (np-hardness of representation-independent querying);
//   - Theorem 4.1: DNF validity → certain answer prefix for ps-queries with
//     branching and optional subtrees (co-np-hardness);
//   - Theorem 4.5: FD/IND implication → certain emptiness for queries with
//     branching, joins and negation (undecidability);
//   - Theorem 4.7: CFG intersection → possible emptiness for queries with
//     recursive path expressions and joins (undecidability).
package reductions

import (
	"fmt"

	"incxml/internal/cond"
	"incxml/internal/dtd"
	"incxml/internal/query"
	"incxml/internal/rat"
	"incxml/internal/refine"
	"incxml/internal/tree"
)

// Lit is a literal: variable index (1-based) and sign.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals. The paper's Theorem 3.6 uses width
// 3 (3-SAT); the construction generalizes to any width, which the tests use
// to keep the (intentionally exponential) decision procedure within memory.
type Clause []Lit

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Width returns the maximum clause width.
func (f Formula) Width() int {
	w := 0
	for _, c := range f.Clauses {
		if len(c) > w {
			w = len(c)
		}
	}
	return w
}

// Satisfiable decides the formula by brute force — the oracle for the
// Theorem 3.6 verifier. Only suitable for small NumVars.
func (f Formula) Satisfiable() bool {
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		if f.eval(mask) {
			return true
		}
	}
	return false
}

func (f Formula) eval(mask int) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			val := mask>>(l.Var-1)&1 == 1
			if val != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Pair is one ps-query/answer observation.
type Pair struct {
	Q query.Query
	A tree.Tree
}

// ThreeSATInstance is the Theorem 3.6 construction: a tree type, a sequence
// of query-answer pairs, and a candidate prefix such that the prefix is
// possible iff the formula is satisfiable.
type ThreeSATInstance struct {
	Formula Formula
	Sigma   []tree.Label
	Type    *dtd.Type
	Pairs   []Pair
	// Prefix is the candidate tree "root(val = 1)" anchored at the answer
	// root node.
	Prefix tree.Tree
}

// litVal encodes a literal as a data value: +i for x_i, -i for ¬x_i.
func litVal(l Lit) rat.Rat {
	v := int64(l.Var)
	if l.Neg {
		v = -v
	}
	return rat.FromInt(v)
}

// BuildThreeSAT constructs the Theorem 3.6 instance for the formula.
func BuildThreeSAT(f Formula) (*ThreeSATInstance, error) {
	if f.NumVars < 1 {
		return nil, fmt.Errorf("reductions: formula needs at least one variable")
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if l.Var < 1 || l.Var > f.NumVars {
				return nil, fmt.Errorf("reductions: literal variable %d out of range", l.Var)
			}
		}
	}
	width := f.Width()
	for _, c := range f.Clauses {
		if len(c) != width {
			return nil, fmt.Errorf("reductions: all clauses must have the same width (pad by repeating a literal)")
		}
	}
	sigma := []tree.Label{"root", "var", "clause", "val"}
	clauseRule := "clause ->"
	for j := 1; j <= width; j++ {
		sigma = append(sigma,
			tree.Label(fmt.Sprintf("lit%d", j)), tree.Label(fmt.Sprintf("val%d", j)))
		clauseRule += fmt.Sprintf(" lit%d", j)
	}
	for j := 1; j <= width; j++ {
		clauseRule += fmt.Sprintf(" val%d", j)
	}
	src := "root: root\nroot -> var* clause* val\nvar -> val\n"
	if width > 0 {
		src += clauseRule + "\n"
	}
	ty := dtd.MustParse(src)
	inst := &ThreeSATInstance{Formula: f, Sigma: sigma, Type: ty}

	tTrue := cond.True()
	rootID := tree.NodeID("r")

	// Pair 1: all variables.
	qVars := query.Query{Root: query.N("root", tTrue, query.N("var", tTrue))}
	aVars := tree.NewID(rootID, "root", rat.Zero)
	for i := 1; i <= f.NumVars; i++ {
		aVars.Children = append(aVars.Children,
			tree.NewID(tree.NodeID(fmt.Sprintf("x%d", i)), "var", rat.FromInt(int64(i))))
	}
	inst.Pairs = append(inst.Pairs, Pair{qVars, tree.Tree{Root: aVars}})

	// Pair 2: the clause encodings.
	if len(f.Clauses) > 0 {
		qcRoot := query.N("clause", tTrue)
		for j := 1; j <= width; j++ {
			qcRoot.Children = append(qcRoot.Children,
				query.N(tree.Label(fmt.Sprintf("lit%d", j)), tTrue))
		}
		qClauses := query.Query{Root: query.N("root", tTrue, qcRoot)}
		aClauses := tree.NewID(rootID, "root", rat.Zero)
		for ci, c := range f.Clauses {
			cid := fmt.Sprintf("c%d", ci+1)
			cl := tree.NewID(tree.NodeID(cid), "clause", rat.Zero)
			for j, l := range c {
				cl.Children = append(cl.Children,
					tree.NewID(tree.NodeID(fmt.Sprintf("%s.l%d", cid, j+1)),
						tree.Label(fmt.Sprintf("lit%d", j+1)), litVal(l)))
			}
			aClauses.Children = append(aClauses.Children, cl)
		}
		inst.Pairs = append(inst.Pairs, Pair{qClauses, tree.Tree{Root: aClauses}})
	}

	// Pair 3: variable values are 0 or 1 (empty answer).
	not01 := cond.NeInt(0).And(cond.NeInt(1))
	inst.Pairs = append(inst.Pairs, Pair{query.Query{Root: query.N("root", tTrue,
		query.N("var", tTrue, query.N("val", not01)))}, tree.Empty()})

	// Pairs 4: literal values are 0 or 1 (empty answers), one per position.
	for j := 1; j <= width; j++ {
		valj := tree.Label(fmt.Sprintf("val%d", j))
		inst.Pairs = append(inst.Pairs, Pair{query.Query{Root: query.N("root", tTrue,
			query.N("clause", tTrue, query.N(valj, not01)))}, tree.Empty()})
	}

	// Pairs 5: literal values agree with the variable assignment: for each
	// occurring literal (¬)x_i at position j and each value v of x_i, there
	// is no clause whose j-th literal is (¬)x_i with value different from
	// (¬)v while x_i = v. (Queries for literal/position combinations that do
	// not occur in the formula are vacuously empty and omitted.)
	seen := map[[3]int]bool{} // (var, negAsInt, position)
	for _, c := range f.Clauses {
		for j, l := range c {
			negInt := 0
			if l.Neg {
				negInt = 1
			}
			key := [3]int{l.Var, negInt, j + 1}
			if seen[key] {
				continue
			}
			seen[key] = true
			lv := litVal(l)
			litj := tree.Label(fmt.Sprintf("lit%d", j+1))
			valj := tree.Label(fmt.Sprintf("val%d", j+1))
			for v := int64(0); v <= 1; v++ {
				want := v
				if l.Neg {
					want = 1 - v
				}
				q := query.Query{Root: query.N("root", tTrue,
					query.N("var", cond.EqInt(int64(l.Var)),
						query.N("val", cond.Eq(rat.FromInt(v)))),
					query.N("clause", tTrue,
						query.N(litj, cond.Eq(lv)),
						query.N(valj, cond.Ne(rat.FromInt(want)))))}
				inst.Pairs = append(inst.Pairs, Pair{q, tree.Empty()})
			}
		}
	}

	// Pair 6: the flag can be 1 only if every clause has a true literal.
	if len(f.Clauses) > 0 {
		flagClause := query.N("clause", tTrue)
		for j := 1; j <= width; j++ {
			flagClause.Children = append(flagClause.Children,
				query.N(tree.Label(fmt.Sprintf("val%d", j)), cond.EqInt(0)))
		}
		inst.Pairs = append(inst.Pairs, Pair{query.Query{Root: query.N("root", tTrue,
			query.N("val", cond.EqInt(1)), flagClause)}, tree.Empty()})
	}

	inst.Prefix = tree.Tree{Root: tree.NewID(rootID, "root", rat.Zero,
		tree.New("val", rat.FromInt(1)))}
	return inst, nil
}

// Decide answers the possible-prefix question by running the paper's actual
// machinery: Algorithm Refine over the pairs, intersection with the tree
// type, and the Theorem 2.8 possible-prefix test. Worst-case exponential in
// the instance — that is Theorem 3.6's content.
func (inst *ThreeSATInstance) Decide() (bool, error) {
	r := refine.NewRefiner(inst.Sigma, inst.Type)
	for _, p := range inst.Pairs {
		if err := r.Observe(p.Q, p.A); err != nil {
			return false, err
		}
	}
	return r.Reachable().IsPossiblePrefix(inst.Prefix), nil
}

// World builds the data tree encoding the formula under the given variable
// assignment (bit i-1 of mask = value of x_i), with the satisfiability flag
// set accordingly. Used by tests to cross-check pairs and membership.
func (inst *ThreeSATInstance) World(mask int) tree.Tree {
	f := inst.Formula
	root := tree.NewID("r", "root", rat.Zero)
	for i := 1; i <= f.NumVars; i++ {
		bit := int64(mask >> (i - 1) & 1)
		root.Children = append(root.Children,
			tree.NewID(tree.NodeID(fmt.Sprintf("x%d", i)), "var", rat.FromInt(int64(i)),
				tree.New("val", rat.FromInt(bit))))
	}
	for ci, c := range f.Clauses {
		cid := fmt.Sprintf("c%d", ci+1)
		cl := tree.NewID(tree.NodeID(cid), "clause", rat.Zero)
		for j, l := range c {
			cl.Children = append(cl.Children,
				tree.NewID(tree.NodeID(fmt.Sprintf("%s.l%d", cid, j+1)),
					tree.Label(fmt.Sprintf("lit%d", j+1)), litVal(l)))
		}
		for j, l := range c {
			bit := int64(mask >> (l.Var - 1) & 1)
			if l.Neg {
				bit = 1 - bit
			}
			cl.Children = append(cl.Children,
				tree.New(tree.Label(fmt.Sprintf("val%d", j+1)), rat.FromInt(bit)))
		}
		root.Children = append(root.Children, cl)
	}
	flag := int64(0)
	if f.eval(mask) {
		flag = 1
	}
	root.Children = append(root.Children, tree.New("val", rat.FromInt(flag)))
	return tree.Tree{Root: root}
}
