package reductions

import (
	"testing"
)

// lit is a test convenience.
func lit(v int, neg bool) Lit { return Lit{Var: v, Neg: neg} }

// c1, c2, c3 build clauses of width 1-3.
func c1(a Lit) Clause        { return Clause{a} }
func c2(a, b Lit) Clause     { return Clause{a, b} }
func c3(a, b, cc Lit) Clause { return Clause{a, b, cc} }

func TestThreeSATSatisfiableOracle(t *testing.T) {
	sat := Formula{NumVars: 2, Clauses: []Clause{
		c3(lit(1, false), lit(2, false), lit(1, false)),
	}}
	if !sat.Satisfiable() {
		t.Error("trivially satisfiable formula reported unsat")
	}
	unsat := Formula{NumVars: 1, Clauses: []Clause{
		c1(lit(1, false)),
		c1(lit(1, true)),
	}}
	if unsat.Satisfiable() {
		t.Error("x and not-x reported satisfiable")
	}
}

func TestThreeSATWorldsConsistentWithPairs(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{
		c3(lit(1, false), lit(2, true), lit(1, false)),
	}}
	inst, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	// Every assignment world satisfies every pair: the answers match.
	for mask := 0; mask < 4; mask++ {
		w := inst.World(mask)
		if err := inst.Type.Validate(w); err != nil {
			t.Fatalf("world %d violates type: %v", mask, err)
		}
		for pi, p := range inst.Pairs {
			got := p.Q.Eval(w)
			if !got.Equal(p.A) {
				t.Fatalf("world %d, pair %d: answer mismatch\nquery:\n%s\ngot:\n%s\nwant:\n%s",
					mask, pi, p.Q, got, p.A)
			}
		}
	}
}

// The Decide procedure runs the paper's actual Refine/possible-prefix
// machinery, which is intentionally exponential in the query-answer
// sequence (Theorem 3.6). The test instances therefore use narrow clauses;
// wide instances are exercised (and measured) by the E10 benchmark.
func TestThreeSATReduction(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
	}{
		{"sat unit clause", Formula{NumVars: 1, Clauses: []Clause{
			c1(lit(1, false)),
		}}},
		{"unsat x and not x", Formula{NumVars: 1, Clauses: []Clause{
			c1(lit(1, false)),
			c1(lit(1, true)),
		}}},
		{"sat width-2", Formula{NumVars: 2, Clauses: []Clause{
			c2(lit(1, false), lit(2, false)),
			c2(lit(1, true), lit(2, false)),
		}}},
		{"unsat width-2 over one var", Formula{NumVars: 1, Clauses: []Clause{
			c2(lit(1, false), lit(1, false)),
			c2(lit(1, true), lit(1, true)),
		}}},
	}
	for _, c := range cases {
		inst, err := BuildThreeSAT(c.f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Decide()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := c.f.Satisfiable()
		if got != want {
			t.Errorf("%s: possible-prefix = %v, satisfiable = %v", c.name, got, want)
		}
	}
}

func TestThreeSATWidth3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("width-3 instance is expensive")
	}
	f := Formula{NumVars: 2, Clauses: []Clause{
		c3(lit(1, false), lit(2, false), lit(2, false)),
	}}
	inst, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("satisfiable width-3 formula decided unsat")
	}
}

func TestBuildThreeSATValidation(t *testing.T) {
	if _, err := BuildThreeSAT(Formula{NumVars: 0}); err == nil {
		t.Error("formula without variables accepted")
	}
	bad := Formula{NumVars: 1, Clauses: []Clause{c1(lit(2, false))}}
	if _, err := BuildThreeSAT(bad); err == nil {
		t.Error("out-of-range literal accepted")
	}
	uneven := Formula{NumVars: 2, Clauses: []Clause{
		c1(lit(1, false)), c2(lit(1, false), lit(2, false))}}
	if _, err := BuildThreeSAT(uneven); err == nil {
		t.Error("uneven clause widths accepted")
	}
}
