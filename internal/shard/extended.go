package shard

import (
	"context"
	"sort"

	"incxml/internal/extquery"
	"incxml/internal/webhouse"
)

// AnswerExtended routes a Section 4 extended query to the source's shard.
// Extension queries inherit the shard's fault domain exactly like local
// answers: a degraded (budget-exhausted) answer counts against the shard's
// degradation counters.
func (c *Cluster) AnswerExtended(ctx context.Context, source string, q extquery.Query) (*webhouse.ExtendedAnswer, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	return g.extOne(ctx, source, q)
}

// extOne is AnswerExtended on one shard with the per-shard counters.
func (g *Group) extOne(ctx context.Context, source string, q extquery.Query) (*webhouse.ExtendedAnswer, error) {
	g.requests.Add(1)
	ea, err := g.wh.AnswerExtended(ctx, source, q)
	if err != nil || ea.BudgetExhausted {
		g.degraded.Add(1)
	}
	return ea, err
}

// ExtAnswer is one source's contribution to an extended scatter.
type ExtAnswer struct {
	Source string
	Shard  int
	Ext    *webhouse.ExtendedAnswer
	// Err is a hard per-source failure (context expiry, solver error).
	Err error
}

// Degraded reports whether the answer is anything less than a completed
// evaluation: a hard failure or a budget-truncated search.
func (ea ExtAnswer) Degraded() bool {
	return ea.Err != nil || (ea.Ext != nil && ea.Ext.BudgetExhausted)
}

// ExtScatter is the gathered result of a cluster-wide extended query: one
// answer per registered source, sorted by source name, plus the per-shard
// health classification. Extended queries carry no scatter-wide merged
// certificate — extended languages are not a strong representation system
// (Section 4), so per-source certificates (present when Corollary 3.15
// applied through a covering ps-query) do not intersect meaningfully.
type ExtScatter struct {
	Answers        []ExtAnswer
	CompleteShards []int
	DegradedShards []int
}

// Degraded reports whether any shard degraded.
func (s *ExtScatter) Degraded() bool { return len(s.DegradedShards) > 0 }

// ByName returns the answer for a source, or nil.
func (s *ExtScatter) ByName(source string) *ExtAnswer {
	i := sort.Search(len(s.Answers), func(i int) bool { return s.Answers[i].Source >= source })
	if i < len(s.Answers) && s.Answers[i].Source == source {
		return &s.Answers[i]
	}
	return nil
}

// ScatterExtended evaluates an extended query on every registered source,
// parallel across shards and sequential within one, with the same plan-
// snapshot and barrier semantics as ScatterLocal: only a dead context
// aborts the whole call, per-source budget exhaustion degrades that
// source's shard.
func (c *Cluster) ScatterExtended(ctx context.Context, q extquery.Query) (*ExtScatter, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type shardPlan struct {
		g    *Group
		srcs []string
	}
	var plan []shardPlan
	for _, g := range c.groups {
		if srcs := g.Sources(); len(srcs) > 0 {
			plan = append(plan, shardPlan{g, srcs})
		}
	}
	results := make([][]ExtAnswer, len(plan))
	run := func(pi int) {
		p := plan[pi]
		out := make([]ExtAnswer, 0, len(p.srcs))
		for _, src := range p.srcs {
			ea := ExtAnswer{Source: src, Shard: p.g.id}
			if err := ctx.Err(); err != nil {
				ea.Err = err
			} else {
				ea.Ext, ea.Err = p.g.extOne(ctx, src, q)
			}
			out = append(out, ea)
		}
		results[pi] = out
	}
	if err := c.scatterPool.Each(ctx, len(plan), run); err != nil {
		return nil, err
	}
	s := &ExtScatter{}
	for pi, p := range plan {
		shardOK := true
		for _, ea := range results[pi] {
			if ea.Degraded() {
				shardOK = false
			}
			s.Answers = append(s.Answers, ea)
		}
		if shardOK {
			s.CompleteShards = append(s.CompleteShards, p.g.id)
		} else {
			s.DegradedShards = append(s.DegradedShards, p.g.id)
		}
	}
	sort.Slice(s.Answers, func(i, j int) bool { return s.Answers[i].Source < s.Answers[j].Source })
	c.scatters.Add(1)
	if s.Degraded() {
		c.scatterDegraded.Add(1)
	}
	return s, nil
}
