package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"incxml/internal/store"
	"incxml/internal/workload"
)

func quietStoreLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// sourceState renders one repository's durable state canonically.
func sourceState(t *testing.T, c *Cluster, name string) string {
	t.Helper()
	g, err := c.Owner(name)
	if err != nil {
		t.Fatalf("owner %s: %v", name, err)
	}
	doc, know, steps, lossy, err := g.wh.Export(name)
	if err != nil {
		t.Fatalf("export %s: %v", name, err)
	}
	return fmt.Sprintf("%s\n---\n%s\n---\nsteps=%d lossy=%v", doc.CanonicalWithIDs(), know.String(), steps, lossy)
}

func clusterStates(t *testing.T, c *Cluster) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range c.Sources() {
		out[name] = sourceState(t, c, name)
	}
	return out
}

// TestShardStoresRecoverPerGroup: every shard group persists to its own
// directory, and a warm restart of the whole cluster recovers every
// repository to the exact pre-shutdown state.
func TestShardStoresRecoverPerGroup(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Shards: 3, Retry: fastRetry}
	opts := store.Options{Logf: quietStoreLogf(t)}

	c, _ := fixture(t, cfg, 5)
	if _, err := c.OpenStores(root, opts); err != nil {
		t.Fatalf("open stores: %v", err)
	}
	warm(t, c)
	ctx := context.Background()
	if _, err := c.Explore(ctx, "src02", workload.Query2()); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("src04", workload.RandomCatalog(6, 77)); err != nil {
		t.Fatal(err)
	}
	want := clusterStates(t, c)
	if err := c.CloseStores(); err != nil {
		t.Fatalf("close stores: %v", err)
	}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := os.Stat(filepath.Join(StoreDir(root, i), "wal.log")); err != nil {
			t.Fatalf("shard %d has no WAL: %v", i, err)
		}
	}

	c2, _ := fixture(t, cfg, 5)
	rec, err := c2.OpenStores(root, opts)
	if err != nil {
		t.Fatalf("recover stores: %v", err)
	}
	if len(rec.Quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %v", rec.Quarantined)
	}
	if rec.ReplayedEvents == 0 {
		t.Fatal("warm restart replayed nothing")
	}
	got := clusterStates(t, c2)
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("source %s diverged after warm restart:\n got:\n%s\nwant:\n%s", name, got[name], w)
		}
	}
	if len(c2.Stores()) != cfg.Shards {
		t.Fatalf("Stores() = %d, want %d", len(c2.Stores()), cfg.Shards)
	}
	if err := c2.CloseStores(); err != nil {
		t.Fatal(err)
	}
}

// TestExportImportRoundTrip: the snapshot payload doubles as the
// rebalancing transfer unit — exporting a repository from one cluster and
// importing it into another reproduces document and knowledge exactly, and
// the import is journaled so it survives a restart of the destination.
func TestExportImportRoundTrip(t *testing.T) {
	cfg := Config{Shards: 2, Retry: fastRetry}
	a, _ := fixture(t, cfg, 3)
	warm(t, a)
	ctx := context.Background()
	if _, err := a.Explore(ctx, "src01", workload.Query2()); err != nil {
		t.Fatal(err)
	}
	blob, err := a.ExportSource("src01")
	if err != nil {
		t.Fatalf("export: %v", err)
	}

	root := t.TempDir()
	opts := store.Options{Logf: quietStoreLogf(t)}
	b, _ := fixture(t, cfg, 3) // same registrations, pristine knowledge
	if _, err := b.OpenStores(root, opts); err != nil {
		t.Fatal(err)
	}
	name, err := b.ImportSource(blob)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if name != "src01" {
		t.Fatalf("imported %q, want src01", name)
	}
	want := sourceState(t, a, "src01")
	if got := sourceState(t, b, "src01"); got != want {
		t.Fatalf("import did not reproduce the exported state:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := b.CloseStores(); err != nil {
		t.Fatal(err)
	}

	// The import was journaled: a restarted destination still has it.
	b2, _ := fixture(t, cfg, 3)
	if _, err := b2.OpenStores(root, opts); err != nil {
		t.Fatal(err)
	}
	defer b2.CloseStores()
	if got := sourceState(t, b2, "src01"); got != want {
		t.Fatalf("imported state lost across restart:\n got:\n%s\nwant:\n%s", got, want)
	}

	if _, err := b2.ImportSource(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated import blob must not be accepted")
	}
}

// TestShardQuarantineIsolation: an unrecoverable repository in one shard
// quarantines only itself — the rest of its shard and all other shards
// recover normally, and startup does not fail.
func TestShardQuarantineIsolation(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Shards: 3, Retry: fastRetry}
	opts := store.Options{Logf: quietStoreLogf(t)}

	c, _ := fixture(t, cfg, 6)
	if _, err := c.OpenStores(root, opts); err != nil {
		t.Fatal(err)
	}
	warm(t, c)
	// Rotate every WAL into its snapshots so a corrupt snapshot is
	// unrecoverable (the pre-rotation events are gone from the log).
	if err := c.SnapshotStores(); err != nil {
		t.Fatal(err)
	}
	want := clusterStates(t, c)
	victim := c.Sources()[0]
	g, err := c.Owner(victim)
	if err != nil {
		t.Fatal(err)
	}
	victimShard := g.id
	if err := c.CloseStores(); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(StoreDir(root, victimShard), "snap", "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots in victim shard: %v", err)
	}
	var snapPath string
	for _, p := range snaps {
		if filepath.Base(p) == victim+".snap" {
			snapPath = p
		}
	}
	if snapPath == "" {
		t.Fatalf("no snapshot for %s among %v", victim, snaps)
	}
	buf, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(snapPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _ := fixture(t, cfg, 6)
	rec, err := c2.OpenStores(root, opts)
	if err != nil {
		t.Fatalf("startup must survive a corrupt shard: %v", err)
	}
	defer c2.CloseStores()
	if len(rec.Quarantined) != 1 || rec.Quarantined[0] != victim {
		t.Fatalf("quarantined %v, want exactly [%s]", rec.Quarantined, victim)
	}
	for name, w := range want {
		if name == victim {
			continue
		}
		if got := sourceState(t, c2, name); got != w {
			t.Fatalf("innocent source %s diverged:\n got:\n%s\nwant:\n%s", name, got, w)
		}
	}
	// The victim serves, flagged and degraded to pristine knowledge.
	vg, err := c2.Owner(victim)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vg.wh.Repo(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Quarantined() {
		t.Fatal("victim repository not flagged as quarantined")
	}
	if _, err := c2.Explore(context.Background(), victim, workload.Query1(200)); err != nil {
		t.Fatalf("quarantined source must still serve: %v", err)
	}
}
