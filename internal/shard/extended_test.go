package shard

import (
	"context"
	"sort"
	"testing"

	"incxml/internal/budget"
	"incxml/internal/cond"
	"incxml/internal/extquery"
)

// extFixtureQuery is a branching extended query over the catalog schema:
// two same-label product siblings with different selections.
func extFixtureQuery() extquery.Query {
	return extquery.Query{Root: extquery.N("catalog", cond.True(),
		extquery.N("product", cond.True(), extquery.N("name", cond.True())),
		extquery.N("product", cond.True(),
			extquery.N("cat", cond.True(), extquery.N("subcat", cond.True()))))}
}

// TestScatterExtendedRoutesAndOrders: the extended scatter answers for
// every registered source, sorted, with per-shard health classification,
// and per-source answers agree with direct owner-shard routing.
func TestScatterExtendedRoutesAndOrders(t *testing.T) {
	c, worlds := fixture(t, Config{Shards: 4}, 9)
	warm(t, c)
	ctx := context.Background()
	q := extFixtureQuery()

	s, err := c.ScatterExtended(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Answers) != len(worlds) {
		t.Fatalf("scatter answered %d sources, want %d", len(s.Answers), len(worlds))
	}
	if !sort.SliceIsSorted(s.Answers, func(i, j int) bool {
		return s.Answers[i].Source < s.Answers[j].Source
	}) {
		t.Fatal("answers not sorted by source")
	}
	if s.Degraded() {
		t.Fatalf("unlimited-budget scatter degraded: shards %v", s.DegradedShards)
	}
	for _, ea := range s.Answers {
		if ea.Err != nil {
			t.Fatalf("%s: %v", ea.Source, ea.Err)
		}
		if ea.Ext.Class != extquery.ClassBranching {
			t.Fatalf("%s: class %v, want branching", ea.Source, ea.Ext.Class)
		}
		direct, err := c.AnswerExtended(ctx, ea.Source, q)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Known.Equal(ea.Ext.Known) {
			t.Fatalf("%s: scatter answer differs from direct routing", ea.Source)
		}
	}
}

// TestScatterExtendedBudgetDegradesShard: a starvation budget degrades the
// affected shards (ExactV stays Unknown, never a wrong definite claim) and
// the degradation is visible in DegradedShards and the shard counters.
func TestScatterExtendedBudgetDegradesShard(t *testing.T) {
	c, _ := fixture(t, Config{Shards: 3, Budget: 1}, 6)
	warm(t, c)
	s, err := c.ScatterExtended(context.Background(), extFixtureQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("1-step budget scatter did not degrade")
	}
	for _, ea := range s.Answers {
		if ea.Err != nil {
			t.Fatalf("%s: hard error instead of sound degrade: %v", ea.Source, ea.Err)
		}
		if !ea.Ext.BudgetExhausted {
			t.Fatalf("%s: not flagged exhausted under 1-step budget", ea.Source)
		}
		if ea.Ext.ExactV != budget.Unknown {
			t.Fatalf("%s: degraded answer claims verdict %v", ea.Source, ea.Ext.ExactV)
		}
	}
	_, degraded := c.Scatters()
	if degraded == 0 {
		t.Fatal("degraded scatter not counted")
	}
}
