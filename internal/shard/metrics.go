package shard

import (
	"strconv"

	"incxml/internal/obs"
)

// ExposeMetrics registers the cluster's serving counters on reg as
// func-backed, scrape-time views. The webhouse-level families keep the
// exact names webhouse.ExposeMetrics uses — aggregated across shards, so
// dashboards built against a single webhouse carry over unchanged — and a
// set of `incxml_shard_*` families breaks the same signals down per shard.
// Per-source children (cache generation, breaker state) come straight from
// each shard's webhouse; source sets are disjoint, so the labeled children
// never collide. Expose after registering the fleet.
func (c *Cluster) ExposeMetrics(reg *obs.Registry) {
	// Cluster-wide totals: same family names and help as the single-
	// webhouse exposition, summed over shards at scrape time.
	reg.CounterFunc("incxml_webhouse_answer_cache_hits_total",
		"Local/extended answers served from the per-source answer caches.",
		func() uint64 { return c.Stats().AnswerCacheHits })
	reg.CounterFunc("incxml_webhouse_answer_cache_misses_total",
		"Local/extended answer lookups that missed the per-source caches.",
		func() uint64 { return c.Stats().AnswerCacheMisses })
	reg.CounterFunc("incxml_webhouse_degraded_answers_total",
		"AnswerComplete calls that fell back to the approximate local answer (source unavailable).",
		func() uint64 { return c.Stats().DegradedAnswers })
	reg.CounterFunc("incxml_webhouse_budget_exhaustions_total",
		"Local computations whose step or deadline budget ran out.",
		func() uint64 { return c.Stats().BudgetExhaustions })
	reg.CounterFunc("incxml_webhouse_lossy_fallbacks_total",
		"Computations recovered through the Proposition 3.13 lossy-shrinking fallback.",
		func() uint64 { return c.Stats().LossyFallbacks })

	reg.CounterFunc("incxml_source_attempts_total",
		"Source calls forwarded to the wrapped clients (all sources).",
		func() uint64 { return c.Stats().Source.Attempts })
	reg.CounterFunc("incxml_source_retries_total",
		"Source-call attempts beyond the first (all sources).",
		func() uint64 { return c.Stats().Source.Retries })
	reg.CounterFunc("incxml_source_failures_total",
		"Source calls that failed after all retries (all sources).",
		func() uint64 { return c.Stats().Source.Failures })
	reg.CounterFunc("incxml_source_breaker_opens_total",
		"Circuit-breaker closed/half-open to open transitions (all sources).",
		func() uint64 { return c.Stats().Source.BreakerOpens })
	reg.CounterFunc("incxml_source_rejections_total",
		"Source calls rejected outright by an open breaker (all sources).",
		func() uint64 { return c.Stats().Source.Rejections })

	// Scatter-gather front-door counters.
	reg.CounterFunc("incxml_shard_scatters_total",
		"Cluster-wide scatter-gather queries served.",
		c.scatters.Load)
	reg.CounterFunc("incxml_shard_scatter_degraded_total",
		"Scatters in which at least one shard degraded.",
		c.scatterDegraded.Load)

	// Per-shard breakdown.
	sources := reg.NewGaugeVec("incxml_shard_sources",
		"Sources the consistent-hash ring assigned to a shard.", "shard")
	down := reg.NewGaugeVec("incxml_shard_down",
		"1 while a shard is administratively down, 0 otherwise.", "shard")
	brk := reg.NewGaugeVec("incxml_shard_breakers_open",
		"Sources of a shard whose circuit breaker is open or half-open.", "shard")
	reqs := reg.NewCounterVec("incxml_shard_requests_total",
		"Source operations routed through a shard.", "shard")
	degr := reg.NewCounterVec("incxml_shard_degraded_total",
		"Shard-routed operations that degraded or failed.", "shard")
	for _, g := range c.groups {
		g := g
		label := strconv.Itoa(g.id)
		sources.Func(func() float64 { return float64(len(g.Sources())) }, label)
		down.Func(func() float64 {
			if g.Down() {
				return 1
			}
			return 0
		}, label)
		brk.Func(func() float64 { return float64(g.BreakersOpen()) }, label)
		reqs.Func(g.requests.Load, label)
		degr.Func(g.degraded.Load, label)

		g.wh.ExposeSourceMetrics(reg)
	}
}
