package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"incxml/internal/faulty"
	"incxml/internal/tree"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
)

// fastRetry keeps retry/breaker timing test-friendly: fail fast, recover
// fast.
var fastRetry = faulty.RetryConfig{
	MaxAttempts:      2,
	BaseDelay:        50 * time.Microsecond,
	MaxDelay:         time.Millisecond,
	BreakerThreshold: 3,
	BreakerCooldown:  10 * time.Millisecond,
}

// fixture builds a cluster over n random catalog sources named src00..,
// registers them, and returns the cluster plus each source's true world.
func fixture(t *testing.T, cfg Config, n int) (*Cluster, map[string]tree.Tree) {
	t.Helper()
	c := New(cfg)
	worlds := map[string]tree.Tree{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("src%02d", i)
		world := workload.RandomCatalog(4+i%5, int64(100+i))
		src, err := webhouse.NewSource(name, workload.CatalogType(), world)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(src); err != nil {
			t.Fatal(err)
		}
		worlds[name] = world
	}
	return c, worlds
}

// warm primes every source's knowledge with Query 1 so that Query 4 needs
// a genuine Theorem 3.19 completion (the fully-answerable shortcut must
// not fire).
func warm(t *testing.T, c *Cluster) {
	t.Helper()
	ctx := context.Background()
	for _, name := range c.Sources() {
		if _, err := c.Explore(ctx, name, workload.Query1(200)); err != nil {
			t.Fatalf("warm %s: %v", name, err)
		}
	}
}

func assertSubsetOf(t *testing.T, a, want tree.Tree, what string) {
	t.Helper()
	ids := want.IDs()
	a.Walk(func(n *tree.Node) {
		if !ids[n.ID] {
			t.Errorf("%s: node %s not part of the true answer", what, n.ID)
		}
	})
}

func TestRingDeterministicAndCovering(t *testing.T) {
	r1 := NewRing(4, 0)
	r2 := NewRing(4, 0)
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("source-%d", i)
		s := r1.Owner(key)
		if s < 0 || s >= 4 {
			t.Fatalf("owner %d out of range", s)
		}
		if got := r2.Owner(key); got != s {
			t.Fatalf("rings disagree on %q: %d vs %d", key, s, got)
		}
		if got := r1.Owner(key); got != s {
			t.Fatalf("ring not stable on %q", key)
		}
		counts[s]++
	}
	// Consistent hashing trades perfect balance for stability; with 64
	// vnodes per shard every shard must still see a solid share of 1000
	// keys. The bound is deliberately loose — this guards against a broken
	// ring (one shard owning everything), not against statistical skew.
	for s, n := range counts {
		if n < 50 {
			t.Errorf("shard %d owns only %d/1000 keys", s, n)
		}
	}
	if NewRing(1, 0).Owner("anything") != 0 {
		t.Error("single-shard ring must own everything")
	}
}

func TestRegisterRoutesByRing(t *testing.T) {
	c, _ := fixture(t, Config{Shards: 4, Retry: fastRetry}, 10)
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	total := 0
	for _, name := range c.Sources() {
		g, err := c.Owner(name)
		if err != nil {
			t.Fatal(err)
		}
		if want := c.Ring().Owner(name); g.ID() != want {
			t.Errorf("%s registered on shard %d, ring says %d", name, g.ID(), want)
		}
		inj, err := c.Injector(name)
		if err != nil || inj == nil {
			t.Errorf("no injector for %s: %v", name, err)
		}
	}
	for _, g := range c.Groups() {
		total += len(g.Sources())
	}
	if total != 10 {
		t.Errorf("groups hold %d sources in total, want 10", total)
	}
	// Duplicate registration must be refused.
	src, err := webhouse.NewSource("src00", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(src); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Unknown sources are reported as such.
	if _, err := c.Owner("ghost"); !errors.Is(err, webhouse.ErrUnknownSource) {
		t.Errorf("Owner(ghost) = %v", err)
	}
}

func TestScatterCompleteExactAndOrdered(t *testing.T) {
	c, worlds := fixture(t, Config{Shards: 3, Retry: fastRetry}, 8)
	warm(t, c)
	q := workload.Query4()
	s, err := c.ScatterComplete(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Answers) != 8 {
		t.Fatalf("%d answers for 8 sources", len(s.Answers))
	}
	for i, sa := range s.Answers {
		if i > 0 && s.Answers[i-1].Source >= sa.Source {
			t.Errorf("answers not sorted at %d: %s >= %s", i, s.Answers[i-1].Source, sa.Source)
		}
		if sa.Err != nil {
			t.Fatalf("%s: %v", sa.Source, sa.Err)
		}
		if sa.Degraded() {
			t.Errorf("%s degraded without any fault", sa.Source)
		}
		truth := q.Eval(worlds[sa.Source])
		if !sa.Complete.Answer.Equal(truth) {
			t.Errorf("%s: wrong exact answer", sa.Source)
		}
		if g, _ := c.Owner(sa.Source); g.ID() != sa.Shard {
			t.Errorf("%s attributed to shard %d, owner is %d", sa.Source, sa.Shard, g.ID())
		}
	}
	if s.Degraded() || len(s.DegradedShards) != 0 {
		t.Errorf("healthy scatter classified degraded: %v", s.DegradedShards)
	}
	// Every shard holding sources is reported complete.
	want := 0
	for _, g := range c.Groups() {
		if len(g.Sources()) > 0 {
			want++
		}
	}
	if len(s.CompleteShards) != want {
		t.Errorf("CompleteShards = %v, want %d shards", s.CompleteShards, want)
	}
	if total, degraded := c.Scatters(); total != 1 || degraded != 0 {
		t.Errorf("scatter counters = (%d, %d), want (1, 0)", total, degraded)
	}
	if s.ByName("src03") == nil || s.ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

// TestScatterDifferentialParallelVsSeq pins the parallel scatter
// byte-identical to the sequential baseline: same answers (compared via
// CanonicalWithIDs), same shard classification.
func TestScatterDifferentialParallelVsSeq(t *testing.T) {
	build := func() (*Cluster, map[string]tree.Tree) {
		c, worlds := fixture(t, Config{Shards: 4, Retry: fastRetry}, 9)
		warm(t, c)
		return c, worlds
	}
	cp, _ := build()
	cs, _ := build()
	q := workload.Query4()
	sp, err := cp.ScatterComplete(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := cs.ScatterCompleteSeq(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Answers) != len(ss.Answers) {
		t.Fatalf("%d parallel answers vs %d sequential", len(sp.Answers), len(ss.Answers))
	}
	for i := range sp.Answers {
		p, s := sp.Answers[i], ss.Answers[i]
		if p.Source != s.Source || p.Shard != s.Shard {
			t.Fatalf("answer %d misaligned: %s/%d vs %s/%d", i, p.Source, p.Shard, s.Source, s.Shard)
		}
		if p.Complete.Answer.CanonicalWithIDs() != s.Complete.Answer.CanonicalWithIDs() {
			t.Errorf("%s: parallel and sequential scatter disagree", p.Source)
		}
	}
	if fmt.Sprint(sp.CompleteShards) != fmt.Sprint(ss.CompleteShards) ||
		fmt.Sprint(sp.DegradedShards) != fmt.Sprint(ss.DegradedShards) {
		t.Errorf("shard classification differs: %v/%v vs %v/%v",
			sp.CompleteShards, sp.DegradedShards, ss.CompleteShards, ss.DegradedShards)
	}
}

// TestOneShardDownSoundness is the one-shard-outage soak: with one shard
// hard down, repeated scatters must flag exactly that shard's sources as
// degraded — each degraded answer sound per Theorem 3.14 (a subset of the
// true answer whose possible set still contains it) — while every other
// source keeps answering exactly. Lifting the outage restores exact
// answers everywhere.
func TestOneShardDownSoundness(t *testing.T) {
	c, worlds := fixture(t, Config{Shards: 4, Retry: fastRetry}, 12)
	warm(t, c)
	var downG *Group
	for _, g := range c.Groups() {
		if len(g.Sources()) > 0 {
			downG = g
			break
		}
	}
	if downG == nil {
		t.Fatal("no shard holds sources")
	}
	downG.SetDown(true)
	if !downG.Down() {
		t.Fatal("Down() not reporting the outage")
	}
	q := workload.Query4()
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		s, err := c.ScatterComplete(context.Background(), q)
		if err != nil {
			t.Fatalf("round %d: a down shard must degrade, not fail the scatter: %v", round, err)
		}
		for _, sa := range s.Answers {
			truth := q.Eval(worlds[sa.Source])
			if sa.Err != nil {
				t.Fatalf("round %d: %s: hard error instead of degradation: %v", round, sa.Source, sa.Err)
			}
			if sa.Shard == downG.ID() {
				if !sa.Complete.Degraded {
					t.Errorf("round %d: %s on the down shard answered exactly", round, sa.Source)
					continue
				}
				if !errors.Is(sa.Complete.Cause, faulty.ErrUnavailable) {
					t.Errorf("round %d: %s: cause does not wrap ErrUnavailable: %v", round, sa.Source, sa.Complete.Cause)
				}
				// Theorem 3.14 soundness: the degraded answer is a lower
				// approximation of the truth, and the possible-answer set
				// has not excluded the truth.
				assertSubsetOf(t, sa.Complete.Answer, truth, sa.Source)
				if sa.Complete.Local == nil || !sa.Complete.Local.Possible.Member(truth) {
					t.Errorf("round %d: %s: possible set excludes the true answer", round, sa.Source)
				}
			} else {
				if sa.Degraded() {
					t.Errorf("round %d: %s degraded on a healthy shard", round, sa.Source)
				} else if !sa.Complete.Answer.Equal(truth) {
					t.Errorf("round %d: %s: wrong exact answer on a healthy shard", round, sa.Source)
				}
			}
		}
		if len(s.DegradedShards) != 1 || s.DegradedShards[0] != downG.ID() {
			t.Errorf("round %d: DegradedShards = %v, want [%d]", round, s.DegradedShards, downG.ID())
		}
	}
	if _, degraded := c.Scatters(); degraded == 0 {
		t.Error("degraded-scatter counter never moved")
	}
	if downG.Degraded() == 0 {
		t.Error("per-shard degraded counter never moved")
	}

	// Recovery: outage lifted, breaker cooled down, answers exact again.
	downG.SetDown(false)
	time.Sleep(2 * fastRetry.BreakerCooldown)
	s, err := c.ScatterComplete(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, sa := range s.Answers {
		if sa.Degraded() {
			t.Errorf("%s still degraded after recovery", sa.Source)
		}
	}
	if len(s.DegradedShards) != 0 {
		t.Errorf("DegradedShards = %v after recovery", s.DegradedShards)
	}
}

// TestScatterExpiredContext: a dead context refuses the scatter instead of
// reporting a partial cluster.
func TestScatterExpiredContext(t *testing.T) {
	c, _ := fixture(t, Config{Shards: 2, Retry: fastRetry}, 4)
	warm(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ScatterComplete(ctx, workload.Query4()); !errors.Is(err, context.Canceled) {
		t.Errorf("ScatterComplete under dead context: %v", err)
	}
	if _, err := c.ScatterLocal(ctx, workload.Query4()); !errors.Is(err, context.Canceled) {
		t.Errorf("ScatterLocal under dead context: %v", err)
	}
}

func TestScatterLocalNeverContactsSources(t *testing.T) {
	c, _ := fixture(t, Config{Shards: 3, Retry: fastRetry}, 6)
	warm(t, c)
	before := map[string]uint64{}
	for _, name := range c.Sources() {
		inj, _ := c.Injector(name)
		before[name] = inj.Calls()
	}
	s, err := c.ScatterLocal(context.Background(), workload.Query4())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Answers) != 6 {
		t.Fatalf("%d answers for 6 sources", len(s.Answers))
	}
	for _, sa := range s.Answers {
		if sa.Err != nil || sa.Local == nil {
			t.Errorf("%s: %v", sa.Source, sa.Err)
		}
	}
	for _, name := range c.Sources() {
		inj, _ := c.Injector(name)
		if inj.Calls() != before[name] {
			t.Errorf("ScatterLocal contacted source %s", name)
		}
	}
}

// TestE22ScatterSmoke is the E22 experiment in miniature: with injected
// per-call source latency, the parallel scatter across 4 shards must beat
// the sequential baseline wall-clock on the same cluster shape. Kept loose
// (strictly faster, no factor) so CI load cannot flake it; the full curve
// lives in cmd/benchrobust.
func TestE22ScatterSmoke(t *testing.T) {
	latency := 10 * time.Millisecond
	if testing.Short() {
		latency = 4 * time.Millisecond
	}
	cfg := Config{
		Shards:   4,
		Retry:    fastRetry,
		Injector: faulty.InjectorConfig{Latency: latency},
	}
	build := func() *Cluster {
		c, _ := fixture(t, cfg, 8)
		warm(t, c)
		return c
	}
	cSeq, cPar := build(), build()
	// The timing claim needs the ring to have actually spread the sources;
	// with everything on one shard parallel == sequential.
	maxLoad := 0
	for _, g := range cPar.Groups() {
		if n := len(g.Sources()); n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad >= 8 {
		t.Skip("ring put every source on one shard; no parallelism to measure")
	}
	q := workload.Query4()
	t0 := time.Now()
	ss, err := cSeq.ScatterCompleteSeq(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	seqD := time.Since(t0)
	t0 = time.Now()
	sp, err := cPar.ScatterComplete(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	parD := time.Since(t0)
	if ss.Degraded() || sp.Degraded() {
		t.Fatal("latency-only injection must not degrade anything")
	}
	t.Logf("sequential %v, parallel %v (max shard load %d/8)", seqD, parD, maxLoad)
	if parD >= seqD {
		t.Errorf("parallel scatter (%v) not faster than sequential (%v)", parD, seqD)
	}
}
