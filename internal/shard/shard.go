// Package shard partitions the webhouse fleet into shard groups behind a
// consistent-hash ring and turns the Theorem 3.19 mediator into a
// scatter-gather front door. Each group owns a disjoint set of sources,
// wrapped in its own fault-injection and retry/breaker layers, so a shard
// is an independent failure domain: when one goes down its sources degrade
// to the flagged Theorem 3.14 local approximation while the rest of the
// cluster keeps answering exactly.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"incxml/internal/budget"
	"incxml/internal/certify"
	"incxml/internal/engine"
	"incxml/internal/faulty"
	"incxml/internal/itree"
	"incxml/internal/query"
	"incxml/internal/store"
	"incxml/internal/tree"
	"incxml/internal/webhouse"
)

// Ring is a consistent-hash ring mapping source names to shard indices.
// Each shard contributes `replicas` virtual points; a key is owned by the
// shard of the first point at or clockwise after the key's hash. Adding a
// shard therefore moves only ~1/n of the keys — the usual argument for
// hashing by ring position instead of `hash % n`.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultReplicas is the virtual-node count per shard when the caller does
// not choose one. 64 points per shard keeps the expected imbalance of the
// largest shard within a few tens of percent of the mean.
const DefaultReplicas = 64

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	// FNV-1a barely avalanches on short, similar keys ("shard-0#1" vs
	// "shard-0#2" differ in a handful of output bits), which clumps the
	// virtual nodes into tight runs and starves shards. The 64-bit murmur3
	// finalizer spreads the FNV digest over the whole ring.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over `shards` shards (minimum 1) with `replicas`
// virtual points each (DefaultReplicas when <= 0). Rings are immutable and
// deterministic: two rings with equal parameters agree on every key.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare with 64-bit FNV) break by shard index so
		// the ring stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards reports the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index owning the key.
func (r *Ring) Owner(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].shard
}

// Config parameterizes a Cluster.
type Config struct {
	// Shards is the number of shard groups (minimum 1).
	Shards int
	// Replicas is the virtual-node count per shard (DefaultReplicas if <= 0).
	Replicas int
	// Budget and ShrinkTo configure every group's webhouse (see
	// webhouse.SetBudget / SetShrinkTo); zero keeps the defaults.
	Budget   int64
	ShrinkTo int
	// Injector and Retry are templates for the per-source fault-injection
	// and retry/breaker layers; each registration derives its own seeds from
	// the template seed and a per-cluster registration sequence so fault
	// sequences stay reproducible but decorrelated across sources.
	Injector faulty.InjectorConfig
	Retry    faulty.RetryConfig
	// Pool fans the scatter out across shards (engine.Default() if nil).
	// Groups' webhouses share it, so one knob bounds the whole cluster's
	// concurrency.
	Pool *engine.Pool
}

// Group is one shard: a webhouse owning the sources the ring assigned
// here, each behind its own injector and retry client.
type Group struct {
	id int
	wh *webhouse.Webhouse

	mu        sync.RWMutex
	injectors map[string]*faulty.Injector
	retries   map[string]*faulty.RetryClient

	down atomic.Bool

	requests atomic.Uint64
	degraded atomic.Uint64
}

// ID returns the shard index.
func (g *Group) ID() int { return g.id }

// Webhouse returns the shard's webhouse.
func (g *Group) Webhouse() *webhouse.Webhouse { return g.wh }

// Sources lists the shard's source names in sorted order.
func (g *Group) Sources() []string { return g.wh.Sources() }

// Injector returns the fault injector in front of a source, or nil if the
// source is not registered here.
func (g *Group) Injector(source string) *faulty.Injector {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.injectors[source]
}

// SetDown toggles a whole-shard outage: every source behind the shard
// fails fast with faulty.ErrUnavailable until the outage is lifted.
func (g *Group) SetDown(down bool) {
	g.down.Store(down)
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, in := range g.injectors {
		in.SetDown(down)
	}
}

// Down reports whether the shard is administratively down.
func (g *Group) Down() bool { return g.down.Load() }

// BreakersOpen counts the shard's sources whose circuit breaker is
// currently open or half-open.
func (g *Group) BreakersOpen() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, rc := range g.retries {
		if rc.BreakerOpen() {
			n++
		}
	}
	return n
}

// Requests reports the source operations routed through the shard, and
// Degraded how many of them fell back to the flagged local approximation
// (or failed outright).
func (g *Group) Requests() uint64 { return g.requests.Load() }
func (g *Group) Degraded() uint64 { return g.degraded.Load() }

// Cluster is the scatter-gather front door: a ring of shard groups and the
// routing and fan-out logic over them. All methods are safe for concurrent
// use.
// mergeFallbackSteps bounds the certificate-merge re-verification when the
// cluster has no configured per-request step budget: large enough for any
// realistic query, small enough that the gather path can never run hot.
const mergeFallbackSteps = 1 << 20

type Cluster struct {
	cfg  Config
	ring *Ring
	pool *engine.Pool
	// scatterPool drives the fan-out barrier with one worker per shard.
	// The scatter is latency-bound — workers spend their time blocked on
	// simulated source waits — so sizing it by GOMAXPROCS (as the solver
	// pool is) would serialize the fan-out on small machines and forfeit
	// exactly the overlap the scatter exists to provide.
	scatterPool *engine.Pool

	groups []*Group

	mu     sync.RWMutex
	owners map[string]*Group
	seq    int64
	// stores are the per-shard durability stores, in group order, when
	// OpenStores wired persistence up (see store.go in this package).
	stores []*store.Store

	scatters        atomic.Uint64
	scatterDegraded atomic.Uint64
}

// New builds a cluster of cfg.Shards empty shard groups.
func New(cfg Config) *Cluster {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = engine.Default()
	}
	c := &Cluster{
		cfg:         cfg,
		ring:        NewRing(cfg.Shards, cfg.Replicas),
		pool:        pool,
		scatterPool: engine.NewPool(cfg.Shards),
		owners:      map[string]*Group{},
	}
	for i := 0; i < cfg.Shards; i++ {
		wh := webhouse.New()
		wh.SetPool(pool)
		if cfg.Budget > 0 {
			wh.SetBudget(cfg.Budget)
		}
		if cfg.ShrinkTo > 0 {
			wh.SetShrinkTo(cfg.ShrinkTo)
		}
		c.groups = append(c.groups, &Group{
			id:        i,
			wh:        wh,
			injectors: map[string]*faulty.Injector{},
			retries:   map[string]*faulty.RetryClient{},
		})
	}
	return c
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.groups) }

// Ring returns the cluster's consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Group returns the i-th shard group.
func (c *Cluster) Group(i int) *Group { return c.groups[i] }

// Groups returns the shard groups in index order. The slice is shared;
// treat it as read-only.
func (c *Cluster) Groups() []*Group { return c.groups }

// Register assigns the source to its ring owner and layers the configured
// injector and retry client in front of it. Seeds derive from the template
// seeds plus the registration sequence number, so a cluster built the same
// way replays the same fault sequences.
func (c *Cluster) Register(src *webhouse.Source) (*Group, error) {
	g := c.groups[c.ring.Owner(src.Name)]
	c.mu.Lock()
	if _, dup := c.owners[src.Name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("shard: source %q already registered", src.Name)
	}
	c.owners[src.Name] = g
	seq := c.seq
	c.seq++
	c.mu.Unlock()

	icfg := c.cfg.Injector
	icfg.Seed += seq
	rcfg := c.cfg.Retry
	rcfg.Seed += seq
	inj := faulty.NewInjector(src.Name, src, icfg)
	rc := faulty.NewRetryClient(inj, rcfg)

	g.wh.Register(src)
	if err := g.wh.SetClient(src.Name, rc); err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.injectors[src.Name] = inj
	g.retries[src.Name] = rc
	g.mu.Unlock()
	// A source registered into a down shard joins the outage.
	if g.down.Load() {
		inj.SetDown(true)
	}
	return g, nil
}

// Owner returns the shard group owning a registered source.
func (c *Cluster) Owner(source string) (*Group, error) {
	c.mu.RLock()
	g, ok := c.owners[source]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("shard: %w %q", webhouse.ErrUnknownSource, source)
	}
	return g, nil
}

// Injector returns the fault injector in front of a registered source.
func (c *Cluster) Injector(source string) (*faulty.Injector, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	return g.Injector(source), nil
}

// Sources lists every registered source name in sorted order.
func (c *Cluster) Sources() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.owners))
	for n := range c.owners {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Explore routes an acquisition query to the source's shard.
func (c *Cluster) Explore(ctx context.Context, source string, q query.Query) (tree.Tree, error) {
	g, err := c.Owner(source)
	if err != nil {
		return tree.Tree{}, err
	}
	return g.wh.Explore(ctx, source, q)
}

// Knowledge routes to the source's shard (see webhouse.Knowledge).
func (c *Cluster) Knowledge(source string) (*itree.T, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	return g.wh.Knowledge(source)
}

// Invalidate routes a knowledge reset to the source's shard.
func (c *Cluster) Invalidate(source string) error {
	g, err := c.Owner(source)
	if err != nil {
		return err
	}
	return g.wh.Invalidate(source)
}

// Update routes a document replacement to the source's shard.
func (c *Cluster) Update(source string, doc tree.Tree) error {
	g, err := c.Owner(source)
	if err != nil {
		return err
	}
	return g.wh.Update(source, doc)
}

// AnswerLocally routes a local-knowledge query to the source's shard.
func (c *Cluster) AnswerLocally(ctx context.Context, source string, q query.Query) (*webhouse.LocalAnswer, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	return g.wh.AnswerLocally(ctx, source, q)
}

// AnswerComplete routes a complete-answer request to the source's shard.
func (c *Cluster) AnswerComplete(ctx context.Context, source string, q query.Query) (*webhouse.CompleteAnswer, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	return g.completeOne(ctx, source, q)
}

// completeOne is AnswerComplete on one shard with the per-shard counters.
func (g *Group) completeOne(ctx context.Context, source string, q query.Query) (*webhouse.CompleteAnswer, error) {
	g.requests.Add(1)
	ca, err := g.wh.AnswerComplete(ctx, source, q)
	if err != nil || ca.Degraded {
		g.degraded.Add(1)
	}
	return ca, err
}

// localOne is AnswerLocally on one shard with the per-shard counters.
func (g *Group) localOne(ctx context.Context, source string, q query.Query) (*webhouse.LocalAnswer, error) {
	g.requests.Add(1)
	la, err := g.wh.AnswerLocally(ctx, source, q)
	if err != nil || la.BudgetExhausted {
		g.degraded.Add(1)
	}
	return la, err
}

// SourceAnswer is one source's contribution to a scatter.
type SourceAnswer struct {
	// Source names the source and Shard the group that answered for it.
	Source string
	Shard  int
	// Complete is set by ScatterComplete, Local by ScatterLocal.
	Complete *webhouse.CompleteAnswer
	Local    *webhouse.LocalAnswer
	// Err is a hard per-source failure (context expiry, solver error).
	// Source outages do not land here — they degrade inside Complete.
	Err error
}

// Certificate returns the answer's completeness certificate: the complete
// answer's (which is the degraded local answer's when the source was down),
// the local answer's, or nil for a hard-failed source — a nil certificate
// certifies nothing, which is exactly what Merge assumes for it.
func (sa SourceAnswer) Certificate() *certify.Certificate {
	switch {
	case sa.Complete != nil:
		return sa.Complete.Certificate
	case sa.Local != nil:
		return sa.Local.Certificate
	default:
		return nil
	}
}

// Degraded reports whether this answer is anything less than exact: a hard
// failure, a flagged Theorem 3.14 approximation, or a budget-truncated
// local answer.
func (sa SourceAnswer) Degraded() bool {
	if sa.Err != nil {
		return true
	}
	if sa.Complete != nil && sa.Complete.Degraded {
		return true
	}
	if sa.Local != nil && sa.Local.BudgetExhausted {
		return true
	}
	return false
}

// Scatter is the gathered result of a cluster-wide query: one answer per
// registered source, sorted by source name, plus the per-shard health
// classification the serving layer reports to clients.
type Scatter struct {
	Answers []SourceAnswer
	// CompleteShards lists shards whose every source answered exactly;
	// DegradedShards those with at least one degraded or failed source.
	// Shards with no sources appear in neither. Both are sorted.
	CompleteShards []int
	DegradedShards []int
	// Certificate is the scatter-wide completeness certificate: the
	// intersection of the per-source certified sub-queries (certify.Merge),
	// with each source's own ratio in PerSource. A hard-failed source — a
	// dead shard the degradation could not soften — contributes nothing, so
	// its atoms drop out of the complete sub-query.
	Certificate *certify.Certificate
}

// Degraded reports whether any shard degraded.
func (s *Scatter) Degraded() bool { return len(s.DegradedShards) > 0 }

// ByName returns the answer for a source, or nil.
func (s *Scatter) ByName(source string) *SourceAnswer {
	i := sort.Search(len(s.Answers), func(i int) bool { return s.Answers[i].Source >= source })
	if i < len(s.Answers) && s.Answers[i].Source == source {
		return &s.Answers[i]
	}
	return nil
}

// ScatterComplete answers q completely on every registered source: the
// fan-out is parallel across shards (one sub-request per shard, bounded by
// the cluster pool) and sequential within a shard. A down shard degrades
// its own sources to the flagged local approximation and never fails the
// scatter; only a dead context or a solver error aborts the whole call.
func (c *Cluster) ScatterComplete(ctx context.Context, q query.Query) (*Scatter, error) {
	return c.scatter(ctx, q, false, true)
}

// ScatterCompleteSeq is ScatterComplete without the cross-shard
// parallelism: shards are visited one after the other. Kept as the
// differential-testing and benchmarking baseline — answers must be
// identical to ScatterComplete's, only slower.
func (c *Cluster) ScatterCompleteSeq(ctx context.Context, q query.Query) (*Scatter, error) {
	return c.scatter(ctx, q, false, false)
}

// ScatterLocal answers q from local knowledge only, on every registered
// source, parallel across shards. No source is contacted.
func (c *Cluster) ScatterLocal(ctx context.Context, q query.Query) (*Scatter, error) {
	return c.scatter(ctx, q, true, true)
}

func (c *Cluster) scatter(ctx context.Context, q query.Query, local, parallel bool) (*Scatter, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Snapshot the per-shard source lists up front: sources registered mid-
	// scatter are not part of this plan.
	type shardPlan struct {
		g    *Group
		srcs []string
	}
	var plan []shardPlan
	for _, g := range c.groups {
		if srcs := g.Sources(); len(srcs) > 0 {
			plan = append(plan, shardPlan{g, srcs})
		}
	}
	results := make([][]SourceAnswer, len(plan))
	run := func(pi int) {
		p := plan[pi]
		out := make([]SourceAnswer, 0, len(p.srcs))
		for _, src := range p.srcs {
			sa := SourceAnswer{Source: src, Shard: p.g.id}
			if err := ctx.Err(); err != nil {
				sa.Err = err
			} else if local {
				sa.Local, sa.Err = p.g.localOne(ctx, src, q)
			} else {
				sa.Complete, sa.Err = p.g.completeOne(ctx, src, q)
			}
			out = append(out, sa)
		}
		results[pi] = out
	}
	if parallel {
		// Pool.Each is a barrier; a non-nil return means the context died
		// and at least one shard was never visited — the scatter is
		// incomplete and must error rather than report a partial cluster.
		if err := c.scatterPool.Each(ctx, len(plan), run); err != nil {
			return nil, err
		}
	} else {
		for pi := range plan {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			run(pi)
		}
	}
	s := &Scatter{}
	for pi, p := range plan {
		shardOK := true
		for _, sa := range results[pi] {
			if sa.Degraded() {
				shardOK = false
			}
			s.Answers = append(s.Answers, sa)
		}
		if shardOK {
			s.CompleteShards = append(s.CompleteShards, p.g.id)
		} else {
			s.DegradedShards = append(s.DegradedShards, p.g.id)
		}
	}
	sort.Slice(s.Answers, func(i, j int) bool { return s.Answers[i].Source < s.Answers[j].Source })
	// Merge the per-source certificates into the scatter-wide one. The merge
	// re-verifies the intersected sub-query against each source's knowledge
	// snapshot under its own bounded budget (the configured per-request
	// steps, or a generous fallback), so a dead deadline or a stingy budget
	// shrinks the certificate instead of overclaiming.
	perSource := make(map[string]*certify.Certificate, len(s.Answers))
	knows := make(map[string]*itree.T, len(s.Answers))
	for _, sa := range s.Answers {
		perSource[sa.Source] = sa.Certificate()
		if g, err := c.Owner(sa.Source); err == nil {
			if know, err := g.Webhouse().Knowledge(sa.Source); err == nil {
				knows[sa.Source] = know
			}
		}
	}
	steps := c.cfg.Budget
	if steps <= 0 {
		steps = mergeFallbackSteps
	}
	s.Certificate = certify.Merge(q, perSource, knows, budget.New(ctx, steps))
	c.scatters.Add(1)
	if s.Degraded() {
		c.scatterDegraded.Add(1)
	}
	return s, nil
}

// Scatters reports the number of scatters run and how many of them had at
// least one degraded shard.
func (c *Cluster) Scatters() (total, degraded uint64) {
	return c.scatters.Load(), c.scatterDegraded.Load()
}

// Stats aggregates the serving counters of every shard's webhouse into one
// cluster view. Per-webhouse counters are summed; the process-global cache
// and intern sections are taken once (they are shared across shards — see
// webhouse.Stats).
func (c *Cluster) Stats() webhouse.Stats {
	agg := c.groups[0].wh.Stats()
	for _, g := range c.groups[1:] {
		st := g.wh.Stats()
		agg.AnswerCacheHits += st.AnswerCacheHits
		agg.AnswerCacheMisses += st.AnswerCacheMisses
		agg.DegradedAnswers += st.DegradedAnswers
		agg.BudgetExhaustions += st.BudgetExhaustions
		agg.LossyFallbacks += st.LossyFallbacks
		agg.Source.Add(st.Source)
	}
	return agg
}
