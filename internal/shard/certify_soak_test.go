package shard_test

import (
	"context"
	"fmt"
	"testing"

	"incxml/internal/certify"
	"incxml/internal/shard"
	"incxml/internal/tree"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
)

// TestCertificateSoundnessSoak is the E23 no-overclaim soak: many random
// two-shard instances, each with one whole shard down, scatter a random
// query and check the scatter-wide certificate's promise the hard way — the
// certified sub-query's answer over every source's certain fragment must
// equal its answer over that source's true world document. Run under -race
// by scripts/verify.sh; -short trims the rounds.
func TestCertificateSoundnessSoak(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 20
	}
	ctx := context.Background()
	var certified, skipped int
	for i := 0; i < rounds; i++ {
		seed := int64(1000 + i)
		c := shard.New(shard.Config{Shards: 2})
		docs := map[string]tree.Tree{}
		for s := 0; s < 3; s++ {
			name := fmt.Sprintf("s%d", s)
			doc := workload.RandomCatalog(3+(i+s)%4, seed*10+int64(s))
			src, err := webhouse.NewSource(name, workload.CatalogType(), doc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Register(src); err != nil {
				t.Fatal(err)
			}
			docs[name] = doc
		}
		for name := range docs {
			if _, err := c.Explore(ctx, name, workload.Query1(int64(100+i%150))); err != nil {
				t.Fatalf("round %d: explore %s: %v", i, name, err)
			}
		}
		q := workload.RandomLinearQuery(workload.CatalogType(), seed, 2+i%3, 300)
		c.Group(i % 2).SetDown(true)

		sc, err := c.ScatterComplete(ctx, q)
		if err != nil {
			t.Fatalf("round %d: scatter: %v", i, err)
		}
		cert := sc.Certificate
		if cert == nil {
			t.Fatalf("round %d: scatter without a certificate", i)
		}
		if cert.Verdict == certify.Full && sc.Degraded() && cert.Exhausted {
			t.Errorf("round %d: full verdict on an exhausted degraded scatter", i)
		}
		if cert.AtomsCertified == 0 {
			skipped++
			continue
		}
		certified++
		subq := certify.Subquery(q, cert.Paths)
		if err := subq.Validate(); err != nil {
			t.Fatalf("round %d: certified sub-query invalid: %v", i, err)
		}
		for _, sa := range sc.Answers {
			if sa.Err != nil {
				continue
			}
			g, err := c.Owner(sa.Source)
			if err != nil {
				t.Fatal(err)
			}
			know, err := g.Webhouse().Knowledge(sa.Source)
			if err != nil {
				t.Fatal(err)
			}
			got := subq.Eval(know.DataTree())
			want := subq.Eval(docs[sa.Source])
			if !got.Equal(want) {
				t.Errorf("round %d: certificate overclaims on %s (shard %d, down=%d):\nsub-query:\n%s",
					i, sa.Source, sa.Shard, i%2, cert.Subquery)
			}
		}
	}
	if certified == 0 {
		t.Errorf("soak never produced a non-empty certificate (%d rounds, %d skipped)", rounds, skipped)
	}
	t.Logf("soak: %d rounds, %d with non-empty certificates, %d empty", rounds, certified, skipped)
}
