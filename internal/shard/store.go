package shard

import (
	"fmt"
	"path/filepath"

	"incxml/internal/store"
)

// Durability wiring: each shard group persists to its own data directory
// (dir/shard-<i>), so a shard is an independent durability domain exactly
// as it is an independent failure domain — one corrupt shard store
// quarantines only its own sources. The per-source snapshot payload is
// also the rebalancing transfer unit: ExportSource/ImportSource move a
// repository's document and accumulated knowledge between clusters (the
// groundwork for ring-aware rebalancing, ROADMAP item 1).

// StoreDir returns the data directory of shard i under a cluster root.
func StoreDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%d", i))
}

// OpenStores opens (or recovers) one store per shard group under
// root/shard-<i>. Call after every source is registered and before serving
// traffic. The returned Recovery aggregates all groups. On error the
// already-opened stores are closed; the cluster keeps serving from memory.
func (c *Cluster) OpenStores(root string, opts store.Options) (*store.Recovery, error) {
	agg := &store.Recovery{}
	stores := make([]*store.Store, 0, len(c.groups))
	for _, g := range c.groups {
		o := opts
		o.Dir = StoreDir(root, g.id)
		s, rec, err := store.OpenOrRecover(o, g.wh)
		if err != nil {
			for _, prev := range stores {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", g.id, err)
		}
		stores = append(stores, s)
		agg.SnapshotsLoaded += rec.SnapshotsLoaded
		agg.ReplayedEvents += rec.ReplayedEvents
		agg.CorruptRecordsDropped += rec.CorruptRecordsDropped
		agg.SnapshotFallbacks += rec.SnapshotFallbacks
		agg.Quarantined = append(agg.Quarantined, rec.Quarantined...)
	}
	c.mu.Lock()
	c.stores = stores
	c.mu.Unlock()
	return agg, nil
}

// Stores returns the per-shard stores in shard order (nil when OpenStores
// was not called). The slice is a copy.
func (c *Cluster) Stores() []*store.Store {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*store.Store(nil), c.stores...)
}

// SnapshotStores flushes a full snapshot pass on every shard store — the
// drain-time flush. Errors are joined per shard; every shard is attempted.
func (c *Cluster) SnapshotStores() error {
	var firstErr error
	for i, s := range c.Stores() {
		if s == nil {
			continue
		}
		if err := s.SnapshotAll(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// CloseStores detaches journaling and closes every shard store.
func (c *Cluster) CloseStores() error {
	stores := c.Stores()
	c.mu.Lock()
	c.stores = nil
	c.mu.Unlock()
	var firstErr error
	for i, g := range c.groups {
		g.wh.SetJournal(nil)
		if i < len(stores) && stores[i] != nil {
			if err := stores[i].Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return firstErr
}

// ExportSource serializes one repository's durable state (document +
// accumulated knowledge) in the snapshot payload format — the transfer
// unit for shipping a repository to another cluster or shard.
func (c *Cluster) ExportSource(source string) ([]byte, error) {
	g, err := c.Owner(source)
	if err != nil {
		return nil, err
	}
	doc, know, steps, lossy, err := g.wh.Export(source)
	if err != nil {
		return nil, err
	}
	return store.EncodeSnapshotPayload(&store.SnapshotPayload{
		Source:    source,
		Doc:       doc,
		HasDoc:    doc.Root != nil,
		Knowledge: know,
		Steps:     steps,
		Lossy:     lossy,
	}), nil
}

// ImportSource installs an exported repository state into the ring owner
// of its source (which must already be registered here). The local
// sequence numbering is untouched: the import lands as a regular Update +
// state restore, journaled like any live mutation, so a subsequent crash
// recovers the imported state too. Returns the source name.
func (c *Cluster) ImportSource(data []byte) (string, error) {
	p, err := store.DecodeSnapshotPayload(data)
	if err != nil {
		return "", err
	}
	g, err := c.Owner(p.Source)
	if err != nil {
		return "", err
	}
	if p.HasDoc {
		if err := g.wh.Update(p.Source, p.Doc); err != nil {
			return "", fmt.Errorf("shard: import %q: %w", p.Source, err)
		}
	}
	if err := g.wh.RestoreKnowledge(p.Source, p.Knowledge, p.Steps, p.Lossy); err != nil {
		return "", err
	}
	return p.Source, nil
}
