package query

import (
	"strings"
	"testing"

	"incxml/internal/cond"
	"incxml/internal/rat"
	"incxml/internal/tree"
)

// Categorical data values for the catalog example, encoded as rationals
// (the paper's data domain is Q; names/categories become code points).
const (
	valElec     = 1
	valCamera   = 2
	valCDPlayer = 3
	valCanon    = 10
	valNikon    = 11
	valSony     = 12
	valOlympus  = 13
	valCJpg     = 20
	valOJpg     = 21
)

func v(n int64) rat.Rat { return rat.FromInt(n) }

// catalogSource is the full input document behind Figures 6, 8 and 9.
func catalogSource() tree.Tree {
	prod := func(id string, name, price, sub int64, pics ...int64) *tree.Node {
		n := tree.NewID(tree.NodeID(id), "product", rat.Zero,
			tree.NewID(tree.NodeID(id+".name"), "name", v(name)),
			tree.NewID(tree.NodeID(id+".price"), "price", v(price)),
			tree.NewID(tree.NodeID(id+".cat"), "cat", v(valElec),
				tree.NewID(tree.NodeID(id+".sub"), "subcat", v(sub))),
		)
		for i, p := range pics {
			n.Children = append(n.Children,
				tree.NewID(tree.NodeID(id+".pic"+string(rune('0'+i))), "picture", v(p)))
		}
		return n
	}
	return tree.Tree{Root: tree.NewID("c0", "catalog", rat.Zero,
		prod("canon", valCanon, 120, valCamera, valCJpg),
		prod("nikon", valNikon, 199, valCamera),
		prod("sony", valSony, 175, valCDPlayer, 99),
		prod("olympus", valOlympus, 250, valCamera, valOJpg),
	)}
}

// query1 is Figure 2: name, price and subcategories of electronics products
// with price < 200.
func query1() Query {
	return Query{Root: N("catalog", cond.True(),
		N("product", cond.True(),
			N("name", cond.True()),
			N("price", cond.LtInt(200)),
			N("cat", cond.EqInt(valElec),
				N("subcat", cond.True()))))}
}

// query2 is Figure 3: name and picture of all cameras whose picture appears.
func query2() Query {
	return Query{Root: N("catalog", cond.True(),
		N("product", cond.True(),
			N("name", cond.True()),
			N("cat", cond.EqInt(valElec),
				N("subcat", cond.EqInt(valCamera))),
			Bar("picture", cond.True())))}
}

func TestValidate(t *testing.T) {
	if err := query1().Validate(); err != nil {
		t.Errorf("query1 invalid: %v", err)
	}
	if err := (Query{}).Validate(); err == nil {
		t.Error("empty query accepted")
	}
	barInternal := Query{Root: &Node{Label: "a", Extract: true, Cond: cond.True(),
		Children: []*Node{N("b", cond.True())}}}
	if err := barInternal.Validate(); err == nil {
		t.Error("bar on internal node accepted")
	}
	dupSiblings := Query{Root: N("r", cond.True(),
		N("a", cond.EqInt(1)), N("a", cond.EqInt(2)))}
	if err := dupSiblings.Validate(); err == nil {
		t.Error("duplicate sibling labels accepted")
	}
	// A bar sibling conflicts with a plain sibling of the same label too.
	mixed := Query{Root: N("r", cond.True(),
		N("a", cond.True()), Bar("a", cond.True()))}
	if err := mixed.Validate(); err == nil {
		t.Error("a and a-bar siblings accepted")
	}
}

func TestIsLinear(t *testing.T) {
	if query1().IsLinear() {
		t.Error("query1 is branching, reported linear")
	}
	lin := Path([]tree.Label{"catalog", "product", "price"},
		[]cond.Cond{cond.True(), cond.True(), cond.LtInt(200)}, false)
	if !lin.IsLinear() {
		t.Error("path query reported non-linear")
	}
	if lin.Size() != 3 || lin.Depth() != 3 {
		t.Errorf("Size/Depth = %d/%d", lin.Size(), lin.Depth())
	}
}

func TestEvalQuery1Figure6(t *testing.T) {
	ans := query1().Eval(catalogSource())
	// Canon, Nikon, Sony match (price < 200, elec); Olympus (250) does not.
	ids := ans.IDs()
	for _, want := range []string{"c0", "canon", "canon.name", "canon.price",
		"canon.cat", "canon.sub", "nikon", "sony", "sony.sub"} {
		if !ids[tree.NodeID(want)] {
			t.Errorf("answer missing node %s", want)
		}
	}
	for _, reject := range []string{"olympus", "canon.pic0", "sony.pic0"} {
		if ids[tree.NodeID(reject)] {
			t.Errorf("answer contains unexpected node %s", reject)
		}
	}
	// 1 catalog + 3 products × 5 nodes (name, price, cat, subcat, product).
	if got := ans.Size(); got != 16 {
		t.Errorf("answer size = %d, want 16", got)
	}
	// The answer is a prefix of the input relative to its own nodes.
	if !ans.IsPrefixOf(catalogSource(), ids) {
		t.Error("answer is not a prefix of the input")
	}
}

func TestEvalQuery2Figure6(t *testing.T) {
	ans := query2().Eval(catalogSource())
	ids := ans.IDs()
	// Cameras with pictures: Canon and Olympus.
	for _, want := range []string{"c0", "canon", "canon.name", "canon.cat",
		"canon.sub", "canon.pic0", "olympus", "olympus.pic0"} {
		if !ids[tree.NodeID(want)] {
			t.Errorf("answer missing node %s", want)
		}
	}
	for _, reject := range []string{"nikon", "sony", "canon.price", "olympus.price"} {
		if ids[tree.NodeID(reject)] {
			t.Errorf("answer contains unexpected node %s", reject)
		}
	}
}

func TestEvalQuery3Figure4(t *testing.T) {
	// Query 3: cameras under $100 with at least one picture — no match in
	// the source (cheapest camera is 120).
	q := Query{Root: N("catalog", cond.True(),
		N("product", cond.True(),
			N("name", cond.True()),
			N("price", cond.LtInt(100)),
			N("cat", cond.EqInt(valElec),
				N("subcat", cond.EqInt(valCamera))),
			Bar("picture", cond.True())))}
	if ans := q.Eval(catalogSource()); !ans.IsEmpty() {
		t.Errorf("query3 should have empty answer, got:\n%s", ans)
	}
}

func TestEvalQuery4Figure5(t *testing.T) {
	// Query 4: list all cameras.
	q := Query{Root: N("catalog", cond.True(),
		N("product", cond.True(),
			N("name", cond.True()),
			N("cat", cond.EqInt(valElec),
				N("subcat", cond.EqInt(valCamera)))))}
	ans := q.Eval(catalogSource())
	ids := ans.IDs()
	for _, want := range []string{"canon", "nikon", "olympus"} {
		if !ids[tree.NodeID(want)] {
			t.Errorf("missing camera %s", want)
		}
	}
	if ids["sony"] {
		t.Error("cdplayer returned as camera")
	}
}

func TestEvalBarExtractsSubtree(t *testing.T) {
	src := tree.Tree{Root: tree.NewID("r", "root", rat.Zero,
		tree.NewID("x", "a", v(1),
			tree.NewID("y", "b", v(2),
				tree.NewID("z", "c", v(3)))))}
	q := Query{Root: N("root", cond.True(), Bar("a", cond.True()))}
	ans := q.Eval(src)
	if ans.Size() != 4 {
		t.Errorf("bar extraction size = %d, want 4 (whole subtree)", ans.Size())
	}
	// Without the bar, only the matched node itself is returned.
	q2 := Query{Root: N("root", cond.True(), N("a", cond.True()))}
	if got := q2.Eval(src).Size(); got != 2 {
		t.Errorf("plain match size = %d, want 2", got)
	}
}

func TestEvalEmptyCases(t *testing.T) {
	if !(Query{}).Eval(catalogSource()).IsEmpty() {
		t.Error("empty query returned nodes")
	}
	if !query1().Eval(tree.Empty()).IsEmpty() {
		t.Error("query on empty tree returned nodes")
	}
	// Root label mismatch.
	q := Query{Root: N("nomatch", cond.True())}
	if !q.Eval(catalogSource()).IsEmpty() {
		t.Error("mismatched root returned nodes")
	}
}

func TestEvalRootCondition(t *testing.T) {
	src := tree.Tree{Root: tree.NewID("r", "root", v(5))}
	hit := Query{Root: N("root", cond.EqInt(5))}
	if hit.Eval(src).IsEmpty() {
		t.Error("matching root condition rejected")
	}
	miss := Query{Root: N("root", cond.EqInt(6))}
	if !miss.Eval(src).IsEmpty() {
		t.Error("failing root condition accepted")
	}
}

func TestEvalPartialMatchExcluded(t *testing.T) {
	// A product matching only part of the pattern must not appear at all.
	src := tree.Tree{Root: tree.NewID("r", "catalog", rat.Zero,
		tree.NewID("p1", "product", rat.Zero,
			tree.NewID("n1", "name", v(1)),
			tree.NewID("pr1", "price", v(300))), // fails price < 200
		tree.NewID("p2", "product", rat.Zero,
			tree.NewID("n2", "name", v(2)),
			tree.NewID("pr2", "price", v(100))))}
	q := Query{Root: N("catalog", cond.True(),
		N("product", cond.True(),
			N("name", cond.True()),
			N("price", cond.LtInt(200))))}
	ids := q.Eval(src).IDs()
	if ids["p1"] || ids["n1"] {
		t.Error("partially matching product leaked into answer")
	}
	if !ids["p2"] || !ids["n2"] || !ids["pr2"] {
		t.Error("fully matching product missing")
	}
}

func TestMatches(t *testing.T) {
	if !query1().Matches(catalogSource()) {
		t.Error("query1 should match")
	}
	q := Query{Root: N("catalog", cond.True(), N("nothing", cond.True()))}
	if q.Matches(catalogSource()) {
		t.Error("impossible query matches")
	}
}

func TestParseAndString(t *testing.T) {
	src := `catalog
  product
    cat {= 1}
      subcat
    name
    price {< 200}
`
	q := MustParse(src)
	if q.Size() != 6 {
		t.Fatalf("parsed size = %d", q.Size())
	}
	// Round trip.
	again := MustParse(q.String())
	if q.String() != again.String() {
		t.Errorf("round trip mismatch:\n%q\nvs\n%q", q.String(), again.String())
	}
	// Same answers as the hand-built query1.
	a1 := query1().Eval(catalogSource())
	a2 := q.Eval(catalogSource())
	if !a1.Equal(a2) {
		t.Error("parsed query answers differ from built query")
	}
}

func TestParseBar(t *testing.T) {
	q := MustParse("root\n  a! {> 3}\n")
	child := q.Root.Children[0]
	if !child.Extract || child.Label != "a" || !child.Cond.Equal(cond.GtInt(3)) {
		t.Errorf("bar parse wrong: %+v", child)
	}
	if !strings.Contains(q.String(), "a! {> 3}") {
		t.Errorf("bar not rendered: %q", q.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",            // empty
		"  indented",  // first node indented
		"a\n    jump", // indentation jump
		"a\n b",       // odd indentation
		"a\n  b {<}",  // bad condition
		"a\n  b {< 1", // unterminated
		"a\n  !",      // missing label
		"a\n  b\n  b", // duplicate siblings
		"a\nb",        // two roots
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	q := query1()
	cp := q.Clone()
	cp.Root.Children[0].Children[0].Label = "changed"
	if q.Root.Children[0].Children[0].Label == "changed" {
		t.Error("clone shares nodes")
	}
}

func TestSubquery(t *testing.T) {
	q := query1()
	sub := Subquery(q.Root.Children[0]) // rooted at product
	if sub.Root.Label != "product" || sub.Size() != 5 {
		t.Errorf("Subquery wrong: %s", sub)
	}
}

func TestMultipleValuationsUnion(t *testing.T) {
	// Two children match the same pattern node: both are in the answer.
	src := tree.Tree{Root: tree.NewID("r", "root", rat.Zero,
		tree.NewID("a1", "a", v(1)),
		tree.NewID("a2", "a", v(2)),
		tree.NewID("a3", "a", v(30)))}
	q := Query{Root: N("root", cond.True(), N("a", cond.LtInt(10)))}
	ids := q.Eval(src).IDs()
	if !ids["a1"] || !ids["a2"] {
		t.Error("union of valuations missing matches")
	}
	if ids["a3"] {
		t.Error("non-matching node included")
	}
}
