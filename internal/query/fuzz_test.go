package query

import "testing"

// FuzzParse checks that the ps-query parser never panics and that accepted
// queries round-trip through the printer.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"catalog\n  product\n    price {< 200}\n",
		"a\n  b!\n",
		"a\n  b {= 1}\n  c {!= 0}\n",
		"root\n  x\n    y\n      z\n",
		"a\n  b\n  b\n", // duplicate siblings: must error, not panic
		"  indented\n",  // bad start
		"a\n    jump\n", // bad indentation
		"a {< }\n",      // bad condition
		"a\n\tb\n",      // tabs
		"!\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", printed, err)
		}
		if again.String() != printed {
			t.Fatalf("printer not canonical: %q vs %q", printed, again.String())
		}
	})
}
