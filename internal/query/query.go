// Package query implements prefix-selection queries (ps-queries, Section 2):
// tree patterns that browse the input from the root, matching element names
// and selection conditions on data values, and extract the prefix of the
// input covered by all valuations. Leaves may carry a bar (Extract), meaning
// the entire subtree below the matched node is extracted.
//
// The model notes: there is no projection (every node involved in the
// pattern is returned), internal pattern nodes carry plain labels, and no
// two sibling pattern nodes may carry the same element name (with or without
// bar). Queries whose pattern is a single path are "linear" (Lemma 3.12).
package query

import (
	"fmt"
	"sort"
	"strings"

	"incxml/internal/cond"
	"incxml/internal/tree"
)

// Node is one node of a ps-query pattern.
type Node struct {
	// Label is the element name the node matches.
	Label tree.Label
	// Extract marks the bar adornment ā: the whole subtree rooted at the
	// matched input node is extracted. Only valid on pattern leaves.
	Extract bool
	// Cond is the selection condition on the matched node's data value.
	Cond cond.Cond
	// Children are the pattern children; their labels must be pairwise
	// distinct.
	Children []*Node
}

// Query is a ps-query ⟨t, λ, cond⟩.
type Query struct {
	Root *Node
}

// N builds a pattern node with the given label, condition, and children.
func N(label tree.Label, c cond.Cond, children ...*Node) *Node {
	return &Node{Label: label, Cond: c, Children: children}
}

// Bar builds a bar-adorned (subtree-extracting) pattern leaf.
func Bar(label tree.Label, c cond.Cond) *Node {
	return &Node{Label: label, Cond: c, Extract: true}
}

// Validate checks the well-formedness constraints of ps-queries: a nonempty
// pattern, bar labels only on leaves, and pairwise distinct sibling labels.
func (q Query) Validate() error {
	if q.Root == nil {
		return fmt.Errorf("query: empty pattern")
	}
	var rec func(*Node) error
	rec = func(n *Node) error {
		if n.Extract && len(n.Children) > 0 {
			return fmt.Errorf("query: bar label %q on internal node", n.Label)
		}
		seen := map[tree.Label]bool{}
		for _, c := range n.Children {
			if seen[c.Label] {
				return fmt.Errorf("query: sibling label %q repeated under %q", c.Label, n.Label)
			}
			seen[c.Label] = true
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(q.Root)
}

// IsLinear reports whether the pattern is a single path — each node has at
// most one child (the restriction of Lemma 3.12).
func (q Query) IsLinear() bool {
	for n := q.Root; n != nil; {
		switch len(n.Children) {
		case 0:
			return true
		case 1:
			n = n.Children[0]
		default:
			return false
		}
	}
	return true
}

// Size returns the number of pattern nodes.
func (q Query) Size() int {
	var rec func(*Node) int
	rec = func(n *Node) int {
		s := 1
		for _, c := range n.Children {
			s += rec(c)
		}
		return s
	}
	if q.Root == nil {
		return 0
	}
	return rec(q.Root)
}

// Depth returns the pattern height.
func (q Query) Depth() int {
	var rec func(*Node) int
	rec = func(n *Node) int {
		d := 0
		for _, c := range n.Children {
			if cd := rec(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	if q.Root == nil {
		return 0
	}
	return rec(q.Root)
}

// Walk visits the pattern nodes in preorder.
func (q Query) Walk(f func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if q.Root != nil {
		rec(q.Root)
	}
}

// Subquery returns the ps-query rooted at pattern node m (q_m in the proofs
// of Theorems 3.14 and 3.19).
func Subquery(m *Node) Query { return Query{Root: m} }

// Clone returns a deep copy of the query.
func (q Query) Clone() Query {
	var rec func(*Node) *Node
	rec = func(n *Node) *Node {
		out := &Node{Label: n.Label, Extract: n.Extract, Cond: n.Cond}
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c))
		}
		return out
	}
	if q.Root == nil {
		return Query{}
	}
	return Query{Root: rec(q.Root)}
}

// Eval computes the answer q(T): the prefix of the input consisting of all
// nodes in the image of some valuation, together with full subtrees below
// nodes matched by bar-adorned pattern leaves.
//
// Because sibling pattern labels are pairwise distinct, valuations decompose
// independently along the pattern: the answer-node set is computed by one
// bottom-up pass (which pattern subtrees can match at which input nodes)
// followed by one top-down pass collecting the images.
func (q Query) Eval(t tree.Tree) tree.Tree {
	if q.Root == nil || t.Root == nil {
		return tree.Empty()
	}
	// Bottom-up: canMatch[m][n] — the pattern subtree at m has a valuation
	// rooted at input node n.
	canMatch := map[*Node]map[*tree.Node]bool{}
	var bottom func(m *Node, n *tree.Node) bool
	bottom = func(m *Node, n *tree.Node) bool {
		if mm, ok := canMatch[m]; ok {
			if v, ok := mm[n]; ok {
				return v
			}
		} else {
			canMatch[m] = map[*tree.Node]bool{}
		}
		ok := m.Label == n.Label && m.Cond.Holds(n.Value)
		if ok {
			for _, mc := range m.Children {
				found := false
				for _, nc := range n.Children {
					if bottom(mc, nc) {
						found = true
						// Keep scanning: memoization fills the table for the
						// top-down pass.
					}
				}
				if !found {
					ok = false
				}
			}
		}
		canMatch[m][n] = ok
		return ok
	}
	if !bottom(q.Root, t.Root) {
		return tree.Empty()
	}
	// Top-down: collect image nodes of all valuations.
	keep := map[tree.NodeID]bool{}
	var markSubtree func(n *tree.Node)
	markSubtree = func(n *tree.Node) {
		keep[n.ID] = true
		for _, c := range n.Children {
			markSubtree(c)
		}
	}
	var top func(m *Node, n *tree.Node)
	top = func(m *Node, n *tree.Node) {
		if m.Extract {
			markSubtree(n)
			return
		}
		keep[n.ID] = true
		for _, mc := range m.Children {
			for _, nc := range n.Children {
				if canMatch[mc][nc] {
					top(mc, nc)
				}
			}
		}
	}
	top(q.Root, t.Root)
	return t.PrefixOn(keep)
}

// Matches reports whether q has at least one valuation into t, i.e. whether
// the answer is nonempty.
func (q Query) Matches(t tree.Tree) bool {
	return !q.Eval(t).IsEmpty()
}

// String renders the query in the indented textual syntax accepted by Parse.
func (q Query) String() string {
	if q.Root == nil {
		return "<empty query>"
	}
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(string(n.Label))
		if n.Extract {
			b.WriteString("!")
		}
		if !n.Cond.IsTrue() {
			fmt.Fprintf(&b, " {%s}", n.Cond)
		}
		b.WriteString("\n")
		kids := append([]*Node(nil), n.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].Label < kids[j].Label })
		for _, c := range kids {
			rec(c, depth+1)
		}
	}
	rec(q.Root, 0)
	return b.String()
}

// Parse reads a query from its indented textual syntax: one node per line,
// two spaces of indentation per level, a label optionally suffixed with "!"
// (bar / subtree extraction), optionally followed by a condition in braces.
//
//	catalog
//	  product
//	    name
//	    price {< 200}
//	    cat {= 1}
//	      subcat
func Parse(src string) (Query, error) {
	type frame struct {
		node  *Node
		depth int
	}
	var root *Node
	var stack []frame
	for lineNo, raw := range strings.Split(src, "\n") {
		if strings.TrimSpace(raw) == "" || strings.HasPrefix(strings.TrimSpace(raw), "#") {
			continue
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent%2 != 0 {
			return Query{}, fmt.Errorf("query: line %d: odd indentation", lineNo+1)
		}
		depth := indent / 2
		text := strings.TrimSpace(raw)
		var condStr string
		if i := strings.IndexByte(text, '{'); i >= 0 {
			if !strings.HasSuffix(text, "}") {
				return Query{}, fmt.Errorf("query: line %d: unterminated condition", lineNo+1)
			}
			condStr = text[i+1 : len(text)-1]
			text = strings.TrimSpace(text[:i])
		}
		n := &Node{Cond: cond.True()}
		if strings.HasSuffix(text, "!") {
			n.Extract = true
			text = text[:len(text)-1]
		}
		if text == "" {
			return Query{}, fmt.Errorf("query: line %d: missing label", lineNo+1)
		}
		n.Label = tree.Label(text)
		if condStr != "" {
			c, err := cond.Parse(condStr)
			if err != nil {
				return Query{}, fmt.Errorf("query: line %d: %v", lineNo+1, err)
			}
			n.Cond = c
		}
		if root == nil {
			if depth != 0 {
				return Query{}, fmt.Errorf("query: line %d: first node must be unindented", lineNo+1)
			}
			root = n
			stack = []frame{{n, 0}}
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 || stack[len(stack)-1].depth != depth-1 {
			return Query{}, fmt.Errorf("query: line %d: bad indentation jump", lineNo+1)
		}
		parent := stack[len(stack)-1].node
		parent.Children = append(parent.Children, n)
		stack = append(stack, frame{n, depth})
	}
	q := Query{Root: root}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for literals in tests and tables.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Path builds a linear query from alternating labels and conditions; the
// bar flag applies to the final node. Convenience for tests and the
// Proposition 3.13 construction.
func Path(labels []tree.Label, conds []cond.Cond, barLast bool) Query {
	if len(labels) == 0 {
		return Query{}
	}
	if len(conds) != len(labels) {
		panic("query: Path needs one condition per label")
	}
	var root, cur *Node
	for i, l := range labels {
		n := &Node{Label: l, Cond: conds[i]}
		if root == nil {
			root = n
		} else {
			cur.Children = []*Node{n}
		}
		cur = n
	}
	cur.Extract = barLast
	return Query{Root: root}
}
