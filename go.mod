module incxml

go 1.22
