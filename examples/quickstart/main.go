// Quickstart: acquire incomplete information about a document with two
// queries, then reason about what is certain, possible, and still unknown.
package main

import (
	"fmt"
	"log"

	"incxml"
)

func main() {
	// A source document the warehouse cannot see directly: a tiny address
	// book. Persistent node ids ("alice", ...) matter: consecutive query
	// answers return the same nodes, so information accumulates per node.
	doc := incxml.Tree{Root: incxml.NewNodeID("book", "book", incxml.Int(0),
		incxml.NewNodeID("alice", "person", incxml.Int(0),
			incxml.NewNodeID("alice.age", "age", incxml.Int(34))),
		incxml.NewNodeID("bob", "person", incxml.Int(0),
			incxml.NewNodeID("bob.age", "age", incxml.Int(17))),
	)}

	// Its DTD (a tree type, Definition 2.2).
	ty := incxml.MustParseType(`
root: book
book   -> person*
person -> age
`)

	// Start the acquisition chain (Algorithm Refine) knowing only the type.
	r := incxml.NewRefiner(ty.Alphabet(), ty)

	// Ask for the adults. The answer comes back and refines our knowledge.
	adults := incxml.MustParseQuery(`book
  person
    age {>= 18}
`)
	if _, err := r.ObserveOn(doc, adults); err != nil {
		log.Fatal(err)
	}

	know := r.Reachable() // the incomplete tree, folded with the type
	fmt.Println("After asking for adults, the warehouse knows:")
	fmt.Println(know)

	// Alice is certainly in every possible world now; a teenager named Bob
	// might or might not exist.
	alicePrefix := incxml.Tree{Root: incxml.NewNodeID("book", "book", incxml.Int(0),
		incxml.NewNodeID("alice", "person", incxml.Int(0)))}
	fmt.Println("alice certain:", know.IsCertainPrefix(alicePrefix))

	somebodyYoung := incxml.Tree{Root: incxml.NewNodeID("book", "book", incxml.Int(0),
		incxml.NewNode("person", incxml.Int(0),
			incxml.NewNode("age", incxml.Int(17))))}
	fmt.Println("a 17-year-old possible:", know.IsPossiblePrefix(somebodyYoung))
	fmt.Println("a second 34-year-old possible:", know.IsPossiblePrefix(
		incxml.Tree{Root: incxml.NewNodeID("book", "book", incxml.Int(0),
			incxml.NewNode("person", incxml.Int(0), incxml.NewNode("age", incxml.Int(34))),
			incxml.NewNode("person", incxml.Int(0), incxml.NewNode("age", incxml.Int(34))),
		)}))

	// Can "everyone over 30" be answered without contacting the source?
	over30 := incxml.MustParseQuery(`book
  person
    age {> 30}
`)
	fully, err := incxml.FullyAnswerable(know, over30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n'over 30' fully answerable from local data:", fully)
	fmt.Println("local answer:")
	fmt.Println(over30.Eval(know.DataTree()))

	// "Everyone under 18" is not: unseen minors may exist. The possible
	// answers are themselves an incomplete tree (Theorem 3.14).
	under18 := incxml.MustParseQuery(`book
  person
    age {< 18}
`)
	fully, err = incxml.FullyAnswerable(know, under18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("'under 18' fully answerable:", fully)
	possible, err := incxml.ApplyQuery(know, under18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("possible answers representation:")
	fmt.Println(possible)
}
