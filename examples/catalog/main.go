// Catalog: the paper's running example, end to end. Reproduces Figures 1-9:
// the catalog tree type, Queries 1-4, the answers of Figure 6, and the
// incomplete trees after Query 1 (Figure 8) and Query 2 (Figure 9),
// including the inferences the paper highlights in Example 3.1 ("Nikon has
// no picture", "Olympus costs at least $200").
package main

import (
	"fmt"
	"log"

	"incxml"
	"incxml/internal/workload"
)

func main() {
	// Figure 1: the catalog tree type. Categorical values are code points:
	// elec=1, camera=2, cdplayer=3.
	ty := workload.CatalogType()
	fmt.Println("== Figure 1: the catalog tree type")
	fmt.Println(ty)

	// The hidden source document (the webhouse never sees it directly).
	doc := workload.PaperCatalog()

	// Figure 2 / Figure 6 left: Query 1 and its answer.
	q1 := workload.Query1(200)
	a1 := q1.Eval(doc)
	fmt.Println("== Query 1 (Figure 2): elec products under $200 — answer (Figure 6, left):")
	fmt.Println(a1)

	// Figure 3 / Figure 6 right: Query 2 and its answer.
	q2 := workload.Query2()
	a2 := q2.Eval(doc)
	fmt.Println("== Query 2 (Figure 3): pictured cameras — answer (Figure 6, right):")
	fmt.Println(a2)

	// Algorithm Refine: fold both observations with the tree type.
	r := incxml.NewRefiner(workload.CatalogSigma, ty)
	if err := r.Observe(q1, a1); err != nil {
		log.Fatal(err)
	}
	after1 := r.Reachable()
	fmt.Printf("== Incomplete tree after Query 1 (Figure 8): size %d, %d data nodes\n\n",
		after1.Size(), len(after1.Nodes))

	if err := r.Observe(q2, a2); err != nil {
		log.Fatal(err)
	}
	after2 := r.Reachable()
	fmt.Printf("== Incomplete tree after Query 2 (Figure 9): size %d, %d data nodes\n",
		after2.Size(), len(after2.Nodes))
	fmt.Println(after2)

	// Example 3.1's inferences, checked against the representation.
	fmt.Println("== Example 3.1 inferences")
	nikonWithPicture := doc.Clone()
	nikon := nikonWithPicture.Find("nikon")
	nikon.Children = append(nikon.Children, incxml.NewNode("picture", incxml.Int(77)))
	fmt.Println("world where Nikon has a picture possible:", after2.Member(nikonWithPicture),
		"(query 2 returned no Nikon picture, so: certainly none)")

	cheapOlympus := doc.Clone()
	cheapOlympus.Find("olympus.price").Value = incxml.Int(150)
	fmt.Println("world where Olympus costs $150 possible:", after2.Member(cheapOlympus),
		"(query 1 did not return it, so: price >= 200)")

	hiddenCamera := doc.Clone()
	hiddenCamera.Root.Children = append(hiddenCamera.Root.Children,
		incxml.NewNodeID("leica", "product", incxml.Int(0),
			incxml.NewNodeID("leica.name", "name", incxml.Int(17)),
			incxml.NewNodeID("leica.price", "price", incxml.Int(999)),
			incxml.NewNodeID("leica.cat", "cat", incxml.Int(workload.ValElec),
				incxml.NewNodeID("leica.sub", "subcat", incxml.Int(workload.ValCamera)))))
	fmt.Println("world with an unseen expensive pictureless camera possible:",
		after2.Member(hiddenCamera), "(that information gap is what Query 4 runs into)")

	// Queries 3 and 4 (Figures 4, 5) against the incomplete tree.
	fmt.Println("\n== Querying the incomplete information (Example 3.4)")
	q3 := workload.Query3(100)
	fully3, err := incxml.FullyAnswerable(after2, q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query 3 (cheap pictured cameras) fully answerable:", fully3)

	q4 := workload.Query4()
	fully4, err := incxml.FullyAnswerable(after2, q4)
	if err != nil {
		log.Fatal(err)
	}
	certain4, _ := incxml.CertainlyNonEmpty(after2, q4)
	fmt.Println("Query 4 (all cameras) fully answerable:", fully4,
		"— certainly nonempty:", certain4)
	fmt.Println("cameras known so far:")
	fmt.Println(q4.Eval(after2.DataTree()))
}
