// Blowup: Example 3.2 and the three countermeasures of Section 3.2.
//
// The workload asks queries root(a = i, b = i) with empty answers. Regular
// incomplete trees must enumerate every combination of "a != i or b != i",
// growing exponentially; the program measures that growth and compares:
//
//   - conjunctive incomplete trees (Refine⁺, Theorem 3.8): linear growth,
//     at the price of NP-hard emptiness (Theorem 3.10);
//   - the Proposition 3.13 additional queries: pin the actual a/b values
//     first and the representation stays small;
//   - lossy shrinking: cap the size, losing the a/b value correlations.
package main

import (
	"fmt"
	"log"

	"incxml"
	"incxml/internal/conj"
	"incxml/internal/workload"
)

func main() {
	const steps = 7
	world := workload.BlowupWorld()

	fmt.Println("Example 3.2 workload: queries root(a=i, b=i), all answers empty")
	fmt.Printf("%4s %12s %12s %12s %12s\n", "n", "regular", "conjunctive", "prop-3.13", "lossy(cap)")

	regular := incxml.NewRefiner(workload.BlowupSigma, nil)
	conjT := conj.FromITree(incxml.Universal(workload.BlowupSigma))

	aided := incxml.NewRefiner(workload.BlowupSigma, nil)
	for _, q := range incxml.AdditionalQueries(workload.BlowupWorkload(steps)) {
		if _, err := aided.ObserveOn(world, q); err != nil {
			log.Fatal(err)
		}
	}

	lossy := incxml.NewRefiner(workload.BlowupSigma, nil)
	const cap = 120

	for i := 1; i <= steps; i++ {
		q := workload.BlowupQuery(int64(i))

		if _, err := regular.ObserveOn(world, q); err != nil {
			log.Fatal(err)
		}
		if err := conjT.RefinePlus(q, q.Eval(world), workload.BlowupSigma); err != nil {
			log.Fatal(err)
		}
		if _, err := aided.ObserveOn(world, q); err != nil {
			log.Fatal(err)
		}
		if _, err := lossy.ObserveOn(world, q); err != nil {
			log.Fatal(err)
		}
		shrunk := incxml.LossyShrink(lossy.Tree(), cap)

		fmt.Printf("%4d %12d %12d %12d %12d\n",
			i, regular.Tree().Size(), conjT.Size(), aided.Tree().Size(), shrunk.Size())
	}

	// The price of conjunctive conciseness: emptiness is NP-complete
	// (Theorem 3.10). Deciding it expands certificates.
	fmt.Println("\nconjunctive tree nonempty (NP check):", !conjT.Empty())
	// All three lossless representations still accept the true world.
	fmt.Println("regular accepts the world:   ", regular.Tree().Member(world))
	fmt.Println("prop-3.13 accepts the world: ", aided.Tree().Member(world))
	fmt.Println("conjunctive accepts the world:", conjT.Member(world))
}
