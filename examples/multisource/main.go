// Multisource: a webhouse over several sources. The paper reduces multiple
// sources to one by virtual merging (Section 3.1); this example keeps them
// separate repositories and shows per-source knowledge, local answering,
// and recovery when one source changes behind the webhouse's back.
package main

import (
	"context"
	"fmt"
	"log"

	"incxml"
	"incxml/internal/workload"
)

func main() {
	ctx := context.Background()
	wh := incxml.NewWebhouse()

	// Two stores with overlapping inventories but different prices.
	euDoc := workload.CatalogDocument([]workload.Product{
		{ID: "eu.canon", Name: 10, Price: 120, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "eu.nikon", Name: 11, Price: 199, Subcat: workload.ValCamera},
		{ID: "eu.amp", Name: 30, Price: 450, Subcat: workload.ValCDPlayer},
	})
	usDoc := workload.CatalogDocument([]workload.Product{
		{ID: "us.canon", Name: 10, Price: 110, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "us.leica", Name: 17, Price: 999, Subcat: workload.ValCamera},
	})
	for name, doc := range map[string]incxml.Tree{"eu": euDoc, "us": usDoc} {
		src, err := incxml.NewSource(name, workload.CatalogType(), doc)
		if err != nil {
			log.Fatal(err)
		}
		wh.Register(src)
	}
	fmt.Println("registered sources:", wh.Sources())

	// Explore both with the cheap-products query.
	q1 := workload.Query1(200)
	for _, name := range []string{"eu", "us"} {
		a, err := wh.Explore(ctx, name, q1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: query 1 returned %d nodes\n", name, a.Size())
	}

	// Ask each source: do you certainly have a camera under $150?
	cheapCam := incxml.MustParseQuery(`catalog
  product
    name
    price {< 150}
    cat {= 1}
      subcat {= 2}
`)
	for _, name := range []string{"eu", "us"} {
		la, err := wh.AnswerLocally(ctx, name, cheapCam)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: camera under $150 — certain %v, fully answerable %v, known answer %d nodes\n",
			name, la.CertainlyNonEmpty, la.Fully, la.Exact.Size())
	}

	// The US store silently reprices the Canon; the next exploration
	// contradicts the accumulated knowledge and the webhouse recovers by
	// reinitializing that repository.
	usRepo, err := wh.Repo("us")
	if err != nil {
		log.Fatal(err)
	}
	repriced := workload.CatalogDocument([]workload.Product{
		{ID: "us.canon", Name: 10, Price: 140, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "us.leica", Name: 17, Price: 999, Subcat: workload.ValCamera},
	})
	if err := usRepo.Source.Update(repriced); err != nil {
		log.Fatal(err)
	}
	if _, err := wh.Explore(ctx, "us", q1); err != nil {
		log.Fatal(err)
	}
	know, err := wh.Knowledge("us")
	if err != nil {
		log.Fatal(err)
	}
	price := know.DataTree().Find("us.canon.price")
	fmt.Printf("\nafter the silent reprice, the webhouse recovered: us canon price now %s\n", price.Value)

	// The EU knowledge is untouched by the US churn.
	euKnow, err := wh.Knowledge("eu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eu knowledge still holds %d data nodes\n", euKnow.DataTree().Size())
}
