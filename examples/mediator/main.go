// Mediator: guiding source access with incomplete information
// (Section 3.4). After the catalog has been partially explored, the query
// "list all cameras" cannot be answered locally; the mediator generates a
// non-redundant set of local queries (Theorem 3.19) that fetches exactly
// the missing information — the paper's Query 5.
package main

import (
	"context"
	"fmt"
	"log"

	"incxml"
	"incxml/internal/workload"
)

func main() {
	// A source with a product the exploration queries cannot see: an
	// expensive camera without pictures.
	doc := workload.CatalogDocument([]workload.Product{
		{ID: "canon", Name: 10, Price: 120, Subcat: workload.ValCamera, Pictures: []int64{20}},
		{ID: "nikon", Name: 11, Price: 199, Subcat: workload.ValCamera},
		{ID: "sony", Name: 12, Price: 175, Subcat: workload.ValCDPlayer},
		{ID: "leica", Name: 17, Price: 999, Subcat: workload.ValCamera}, // hidden
	})
	src, err := incxml.NewSource("catalog", workload.CatalogType(), doc)
	if err != nil {
		log.Fatal(err)
	}
	wh := incxml.NewWebhouse()
	wh.Register(src)

	// Explore with the running example's queries.
	ctx := context.Background()
	for _, q := range []incxml.Query{workload.Query1(200), workload.Query2()} {
		if _, err := wh.Explore(ctx, "catalog", q); err != nil {
			log.Fatal(err)
		}
	}
	know, err := wh.Knowledge("catalog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored with Queries 1 and 2: %d data nodes known\n",
		know.DataTree().Size())
	fmt.Println("the hidden Leica is invisible so far:",
		know.DataTree().Find("leica") == nil)

	// Query 4: list all cameras. Not fully answerable.
	q4 := workload.Query4()
	fully, err := incxml.FullyAnswerable(know, q4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQuery 4 fully answerable locally:", fully)

	// The mediator generates a non-redundant completion: local queries
	// anchored at known nodes that fetch precisely the missing parts.
	ls, err := incxml.Complete(know, q4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completion: %d local queries (cf. the paper's Query 5):\n", len(ls))
	for _, lq := range ls {
		fmt.Println("---")
		fmt.Println(lq)
	}

	// Execute them, merge, answer.
	ca, err := wh.AnswerComplete(ctx, "catalog", q4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %d local queries; exact answer:\n%s", ca.LocalQueries, ca.Answer)
	fmt.Println("the hidden camera surfaced:", ca.Answer.Find("leica") != nil)
	served, _ := src.Served()
	fmt.Printf("total queries served by the source: %d\n", served)
}
