// Benchrobust measures the robustness layer and writes the results as
// JSON (BENCH_robustness.json by default).
//
// The experiment blocks:
//
//  1. Budgeted vs. exact conjunctive emptiness on the Example 3.2 blowup
//     family: for each prefix of the workload root(a=i, b=i) the program
//     times the exact NP certificate scan (Theorem 3.10) against the
//     budget-guarded three-valued scan, recording the verdicts so the
//     anytime contract — never wrong when it answers — is visible next to
//     the latency it buys.
//
//  2. Serve-mode latency under the chaos soak load: a server with tight
//     admission limits, per-request budgets, and injected source faults
//     takes a mixed burst of requests (explores, local/complete answers,
//     blowups, malformed bodies, unknown sources) from concurrent workers;
//     the program records per-request latency percentiles, the status
//     breakdown, the shed/degradation counters, and a flattened snapshot
//     of the server's /metrics registry.
//
//  3. Metrics overhead (EXPERIMENTS.md E20): serial /local latency with the
//     observability pipeline enabled versus the no-op recorder
//     (obs.SetEnabled(false)), reporting both percentile sets and the p99
//     ratio — the number behind the "<5% overhead" claim.
//
//  4. Raw-speed pass (EXPERIMENTS.md E21): the budgeted-`unknown` crossover
//     of the blowup family under the pruned certificate search (steps used
//     per n at the fixed 20k budget), plus single-worker ns/op and
//     allocs/op of the pruned search versus the reference mixed-radix scan
//     on the hard-empty 2^k family.
//
//  5. Scatter-gather scaling (EXPERIMENTS.md E22): cluster-wide completion
//     latency of the parallel scatter versus the sequential baseline over
//     the same fleet at 1, 2 and 4 shards under injected per-call source
//     latency, plus the one-shard-down p99 at 4 shards — the parallel
//     fan-out must keep degrading per shard without stretching the tail
//     across the healthy ones.
//
//  6. Completeness certificates under outage (EXPERIMENTS.md E23): a soak
//     of random two-shard instances, each with one whole shard down,
//     scattering random linear queries and recording the distribution of
//     scatter-wide completeness ratios, the verdict split, and — the
//     soundness tally — a re-check of every non-empty certificate against
//     the true world documents (overclaims must stay zero).
//
//  7. Durability cost (EXPERIMENTS.md E24): the WAL-append overhead on a
//     serial explore workload with and without an attached store, snapshot
//     size as a function of repository size, and cold recovery time as a
//     function of WAL length.
//
//  8. Mixed extension traffic (EXPERIMENTS.md E25): the workload
//     generator's session-shaped, zipfian-skewed stream — acquisition,
//     blowup chains, Section 4 extension probes, reduction probes, and
//     twig-from-examples sessions — driven through the HTTP surface,
//     with per-class latency percentiles, verdict splits, and an oracle
//     re-check of every definite verdict (mismatches must be zero).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"incxml/internal/budget"
	"incxml/internal/certify"
	"incxml/internal/cond"
	"incxml/internal/conj"
	"incxml/internal/ctype"
	"incxml/internal/dtd"
	"incxml/internal/engine"
	"incxml/internal/faulty"
	"incxml/internal/obs"
	"incxml/internal/refine"
	"incxml/internal/serve"
	"incxml/internal/shard"
	"incxml/internal/tree"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
)

type emptinessRow struct {
	N               int     `json:"n"`
	Size            int     `json:"size"`
	ExactEmpty      bool    `json:"exactEmpty"`
	ExactMs         float64 `json:"exactMs"`
	BudgetSteps     int64   `json:"budgetSteps"`
	BudgetedVerdict string  `json:"budgetedVerdict"`
	BudgetedMs      float64 `json:"budgetedMs"`
}

type latencySummary struct {
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

type soakReport struct {
	Workers      int            `json:"workers"`
	Requests     int            `json:"requests"`
	TimeoutMs    float64        `json:"timeoutMs"`
	MaxInflight  int            `json:"maxInflight"`
	Queue        int            `json:"queue"`
	BudgetSteps  int64          `json:"budgetSteps"`
	FailRate     float64        `json:"failRate"`
	StatusCounts map[string]int `json:"statusCounts"`
	Latency      latencySummary `json:"latency"`
	Stats        serve.Stats    `json:"stats"`
	// Metrics is the post-soak flattened registry snapshot (sample name,
	// labels included, -> value), the same data GET /metrics exposes.
	Metrics map[string]float64 `json:"metrics"`
}

type overheadReport struct {
	Requests int            `json:"requests"`
	Enabled  latencySummary `json:"enabled"`
	Disabled latencySummary `json:"disabled"`
	// P99Ratio is enabled-p99 / disabled-p99 (1.0 = free metrics).
	P99Ratio float64 `json:"p99Ratio"`
}

// e21Row records one blowup prefix under the fixed E21 budget: the
// three-valued verdict and the steps the pruned search actually charged.
type e21Row struct {
	N       int    `json:"n"`
	Verdict string `json:"verdict"`
	Steps   int64  `json:"steps"`
}

// e21Report is the EXPERIMENTS.md E21 block: where (if anywhere) the
// budgeted verdict degrades to unknown on the blowup family, and the
// single-worker before/after comparison on the hard-empty family.
type e21Report struct {
	BudgetSteps int64 `json:"budgetSteps"`
	MaxN        int   `json:"maxN"`
	// CrossoverN is the first n whose budgeted verdict is unknown;
	// 0 means every prefix up to MaxN stayed exactly decided.
	CrossoverN int      `json:"crossoverN"`
	Blowup     []e21Row `json:"blowup"`

	// Single-worker hard-empty comparison: reference mixed-radix scan
	// ("before") vs the pruned certificate search ("after").
	HardK              int     `json:"hardK"`
	SequentialNsOp     int64   `json:"sequentialNsOp"`
	SequentialAllocsOp int64   `json:"sequentialAllocsOp"`
	PrunedNsOp         int64   `json:"prunedNsOp"`
	PrunedAllocsOp     int64   `json:"prunedAllocsOp"`
	SpeedupX           float64 `json:"speedupX"`
}

// e22Row compares the parallel scatter against the sequential baseline over
// the same fleet at one shard count.
type e22Row struct {
	Shards       int     `json:"shards"`
	ScatterP50Ms float64 `json:"scatterP50Ms"`
	ScatterP99Ms float64 `json:"scatterP99Ms"`
	SeqP50Ms     float64 `json:"seqP50Ms"`
	SeqP99Ms     float64 `json:"seqP99Ms"`
	// SpeedupX is seq-p50 / scatter-p50 (1.0 = no parallel win).
	SpeedupX float64 `json:"speedupX"`
}

// e22Outage is the one-shard-down pass: the scatter must keep answering —
// flagged Theorem 3.14 approximations for the dead shard, exact answers
// elsewhere — without the outage stretching the healthy shards' tail.
type e22Outage struct {
	Shards    int     `json:"shards"`
	DownShard int     `json:"downShard"`
	Rounds    int     `json:"rounds"`
	P99Ms     float64 `json:"p99Ms"`
	// DegradedPerRound is the per-round count of flagged degraded source
	// answers (the down shard's population; everyone else stays exact).
	DegradedPerRound int  `json:"degradedPerRound"`
	AllHealthyExact  bool `json:"allHealthyExact"`
}

// e22Report is the EXPERIMENTS.md E22 block: scatter-gather scaling under
// injected per-call source latency.
type e22Report struct {
	Sources   int       `json:"sources"`
	LatencyMs float64   `json:"latencyMs"`
	Rounds    int       `json:"rounds"`
	Rows      []e22Row  `json:"rows"`
	Outage    e22Outage `json:"outage"`
}

// e23Report is the EXPERIMENTS.md E23 block: the completeness-ratio
// distribution of scatter-wide certificates over a one-shard-outage soak,
// the verdict split, and the soundness tally from re-checking every
// non-empty certificate against the true world documents.
type e23Report struct {
	Shards          int            `json:"shards"`
	SourcesPerRound int            `json:"sourcesPerRound"`
	Rounds          int            `json:"rounds"`
	VerdictCounts   map[string]int `json:"verdictCounts"`
	RatioMin        float64        `json:"ratioMin"`
	RatioP50        float64        `json:"ratioP50"`
	RatioP90        float64        `json:"ratioP90"`
	RatioMax        float64        `json:"ratioMax"`
	RatioMean       float64        `json:"ratioMean"`
	// NonEmptyCertificates counts rounds whose scatter-wide certificate
	// certified at least one query atom despite the outage.
	NonEmptyCertificates int `json:"nonEmptyCertificates"`
	// Overclaims counts certified sub-queries whose answer over a source's
	// certain fragment differed from its answer over the world — the
	// soundness contract says this must stay zero.
	Overclaims int `json:"overclaims"`
	// HealthyFullAnswers counts per-source certificates on reachable
	// sources that certified the whole query (exact completions).
	HealthyFullAnswers int `json:"healthyFullAnswers"`
}

type report struct {
	GeneratedUnix   int64          `json:"generatedUnix"`
	BlowupEmptiness []emptinessRow `json:"blowupEmptiness"`
	ServeSoak       soakReport     `json:"serveSoak"`
	MetricsOverhead overheadReport `json:"metricsOverhead"`
	E21             e21Report      `json:"e21"`
	E22             e22Report      `json:"e22"`
	E23             e23Report      `json:"e23"`
	E24             e24Report      `json:"e24"`
	E25             e25Report      `json:"e25"`
}

func main() {
	out := flag.String("out", "BENCH_robustness.json", "output file")
	maxN := flag.Int("max-n", 9, "largest blowup workload prefix")
	steps := flag.Int64("budget", 20_000, "step budget for the budgeted emptiness scan")
	workers := flag.Int("workers", 8, "concurrent soak workers")
	perWorker := flag.Int("requests", 50, "soak requests per worker")
	overheadN := flag.Int("overhead-requests", 2000, "serial requests per E20 overhead run")
	e21MaxN := flag.Int("e21-max-n", 12, "largest blowup prefix for the E21 crossover scan")
	e21HardK := flag.Int("e21-hard-k", 12, "hard-empty family size for the E21 before/after benchmark")
	e22Sources := flag.Int("e22-sources", 8, "fleet size for the E22 scatter-gather scan")
	e22Rounds := flag.Int("e22-rounds", 7, "timed completion rounds per E22 configuration")
	e22Latency := flag.Duration("e22-latency", 5*time.Millisecond, "injected per-call source latency for E22")
	e23Rounds := flag.Int("e23-rounds", 80, "random outage instances for the E23 certificate soak")
	e24Requests := flag.Int("e24-requests", 400, "serial explores per E24 durability-overhead run")
	e25Sessions := flag.Int("e25-sessions", 80, "generated traffic sessions for the E25 mixed-workload run")
	e25ZipfS := flag.Float64("e25-zipf-s", 1.3, "zipfian source-popularity exponent for E25 (must exceed 1)")
	e25Mix := flag.String("e25-mix", "", "E25 query-class mix, e.g. catalog=4,blowup=2,pathre=2,join=1,negation=1 (empty = default)")
	e25Seed := flag.Int64("e25-seed", 2026, "E25 traffic seed (replayable: same seed, same stream)")
	e25TraceOut := flag.String("e25-trace-out", "", "write the replayable E25 traffic trace (JSONL) to this file")
	flag.Parse()

	rep := report{GeneratedUnix: time.Now().Unix()}
	rep.BlowupEmptiness = benchEmptiness(*maxN, *steps)
	rep.ServeSoak = benchServe(*workers, *perWorker)
	rep.MetricsOverhead = benchOverhead(*overheadN)
	rep.E21 = benchE21(*e21MaxN, *steps, *e21HardK)
	rep.E22 = benchE22(*e22Sources, *e22Rounds, *e22Latency)
	rep.E23 = benchE23(*e23Rounds)
	rep.E24 = benchE24(*e24Requests)
	rep.E25 = benchE25(*e25Sessions, *e25ZipfS, *e25Mix, *e25Seed, *e25TraceOut)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

func benchEmptiness(maxN int, steps int64) []emptinessRow {
	world := workload.BlowupWorld()
	t := conj.FromITree(refine.Universal(workload.BlowupSigma))
	pool := engine.Default()
	rows := make([]emptinessRow, 0, maxN)
	for n := 1; n <= maxN; n++ {
		q := workload.BlowupQuery(int64(n))
		if err := t.RefinePlus(q, q.Eval(world), workload.BlowupSigma); err != nil {
			fmt.Fprintln(os.Stderr, "refine:", err)
			os.Exit(1)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		start := time.Now()
		empty := t.EmptyPool(ctx, pool)
		exactMs := msSince(start)
		cancel()

		bud := budget.New(context.Background(), steps)
		start = time.Now()
		verdict, _ := t.EmptyBudgeted(context.Background(), pool, bud)
		budgetedMs := msSince(start)

		rows = append(rows, emptinessRow{
			N:               n,
			Size:            t.Size(),
			ExactEmpty:      empty,
			ExactMs:         exactMs,
			BudgetSteps:     steps,
			BudgetedVerdict: verdict.String(),
			BudgetedMs:      budgetedMs,
		})
		fmt.Printf("blowup n=%d size=%d exact=%v (%.2fms) budgeted=%s (%.2fms)\n",
			n, t.Size(), empty, exactMs, verdict, budgetedMs)
	}
	return rows
}

const (
	soakTimeout = 500 * time.Millisecond
	soakBudget  = int64(30_000)
)

func benchServe(workers, perWorker int) soakReport {
	s, err := serve.New(serve.Config{
		Timeout:     soakTimeout,
		MaxInflight: 4,
		Queue:       8,
		Budget:      soakBudget,
		FailRate:    0.10,
		Latency:     time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	const catalogBody = "catalog\n  product\n    name\n    price {< 200}\n    cat {= 1}\n      subcat\n"
	blowupBody := func(i int) string { return fmt.Sprintf("root\n  a {= %d}\n  b {= %d}\n", i, i) }

	// Warm the catalog so local answers have knowledge to work from; the
	// injected fault rate means a few tries may shed or fail.
	for try := 0; try < 20; try++ {
		if code, _ := post(client, ts.URL+"/explore", catalogBody); code == http.StatusOK {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		counts    = map[string]int{}
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < perWorker; i++ {
				var path, body string
				switch rng.Intn(10) {
				case 0, 1:
					path, body = "/explore", catalogBody
				case 2, 3:
					path, body = "/local", catalogBody
				case 4:
					path, body = "/complete", catalogBody
				case 5:
					path, body = "/explore?source=blowup", blowupBody(1+rng.Intn(8))
				case 6:
					path, body = "/local?source=blowup", blowupBody(1+rng.Intn(8))
				case 7:
					path, body = "/local", "not a query {{{"
				case 8:
					path, body = "/local?source=nope", catalogBody
				default:
					path, body = "/local", ""
				}
				start := time.Now()
				code, err := post(client, ts.URL+path, body)
				elapsed := time.Since(start)
				mu.Lock()
				latencies = append(latencies, elapsed)
				if err != nil {
					counts["error"]++
				} else {
					counts[fmt.Sprint(code)]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := soakReport{
		Workers:      workers,
		Requests:     workers * perWorker,
		TimeoutMs:    float64(soakTimeout) / float64(time.Millisecond),
		MaxInflight:  4,
		Queue:        8,
		BudgetSteps:  soakBudget,
		FailRate:     0.10,
		StatusCounts: counts,
		Latency: latencySummary{
			P50Ms: pctMs(latencies, 50),
			P95Ms: pctMs(latencies, 95),
			P99Ms: pctMs(latencies, 99),
			MaxMs: pctMs(latencies, 100),
		},
		Stats:   s.Stats(),
		Metrics: s.MetricsSnapshot(),
	}
	fmt.Printf("soak: %d requests, p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms, statuses=%v\n",
		rep.Requests, rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms, rep.Latency.MaxMs, counts)
	return rep
}

// benchOverhead is EXPERIMENTS.md E20: the same serial /local workload
// measured with the observability pipeline live and with the no-op
// recorder (obs.SetEnabled(false)), in-process to keep network noise out
// of the comparison.
func benchOverhead(n int) overheadReport {
	const body = "catalog\n  product\n    name\n    price {< 200}\n    cat {= 1}\n      subcat\n"
	run := func(enabled bool) latencySummary {
		prev := obs.SetEnabled(enabled)
		defer obs.SetEnabled(prev)
		s, err := serve.New(serve.Config{Timeout: 5 * time.Second, Budget: 50_000, Trace: enabled})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		h := s.Handler()
		do := func() int {
			req := httptest.NewRequest("POST", "/local", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec.Code
		}
		for i := 0; i < 50; i++ { // warm caches and code paths
			do()
		}
		lat := make([]time.Duration, n)
		for i := range lat {
			start := time.Now()
			if code := do(); code != http.StatusOK {
				fmt.Fprintln(os.Stderr, "overhead run: unexpected status", code)
				os.Exit(1)
			}
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return latencySummary{
			P50Ms: pctMs(lat, 50),
			P95Ms: pctMs(lat, 95),
			P99Ms: pctMs(lat, 99),
			MaxMs: pctMs(lat, 100),
		}
	}
	disabled := run(false)
	enabled := run(true)
	ratio := 0.0
	if disabled.P99Ms > 0 {
		ratio = enabled.P99Ms / disabled.P99Ms
	}
	fmt.Printf("metrics overhead: p99 enabled=%.3fms disabled=%.3fms ratio=%.3f (n=%d)\n",
		enabled.P99Ms, disabled.P99Ms, ratio, n)
	return overheadReport{Requests: n, Enabled: enabled, Disabled: disabled, P99Ratio: ratio}
}

// benchE21 is EXPERIMENTS.md E21. Part one: run the pruned budgeted search
// on each blowup prefix at the fixed step budget and record the first n (if
// any) where the verdict degrades to unknown — before the raw-speed pass the
// crossover sat at n=6. Part two: single-worker hard-empty emptiness, the
// reference mixed-radix certificate scan versus the pruned search, measured
// with testing.Benchmark so ns/op and allocs/op land in the report.
func benchE21(maxN int, steps int64, hardK int) e21Report {
	rep := e21Report{BudgetSteps: steps, MaxN: maxN, HardK: hardK}

	world := workload.BlowupWorld()
	t := conj.FromITree(refine.Universal(workload.BlowupSigma))
	for n := 1; n <= maxN; n++ {
		q := workload.BlowupQuery(int64(n))
		if err := t.RefinePlus(q, q.Eval(world), workload.BlowupSigma); err != nil {
			fmt.Fprintln(os.Stderr, "refine:", err)
			os.Exit(1)
		}
		bud := budget.New(context.Background(), steps)
		verdict, _ := t.EmptyBudgeted(context.Background(), nil, bud)
		rep.Blowup = append(rep.Blowup, e21Row{N: n, Verdict: verdict.String(), Steps: bud.Used()})
		if verdict == budget.Unknown && rep.CrossoverN == 0 {
			rep.CrossoverN = n
		}
		fmt.Printf("e21 blowup n=%d budgeted=%s steps=%d/%d\n", n, verdict, bud.Used(), steps)
	}

	hard := hardEmptyConj(hardK)
	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !hard.EmptySequential() {
				b.Fatal("hard instance not empty")
			}
		}
	})
	pruned := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !hard.Empty() {
				b.Fatal("hard instance not empty")
			}
		}
	})
	rep.SequentialNsOp = seq.NsPerOp()
	rep.SequentialAllocsOp = seq.AllocsPerOp()
	rep.PrunedNsOp = pruned.NsPerOp()
	rep.PrunedAllocsOp = pruned.AllocsPerOp()
	if pruned.NsPerOp() > 0 {
		rep.SpeedupX = float64(seq.NsPerOp()) / float64(pruned.NsPerOp())
	}
	fmt.Printf("e21 hard-empty k=%d: sequential %dns/op %dallocs/op, pruned %dns/op %dallocs/op (%.1fx)\n",
		hardK, rep.SequentialNsOp, rep.SequentialAllocsOp, rep.PrunedNsOp, rep.PrunedAllocsOp, rep.SpeedupX)
	return rep
}

// newE22Cluster builds a shard cluster over `sources` random catalogs with
// per-call injected latency and fast, bounded retries — the E22 fleet. The
// source names hash 2-2-2-2 over four shards at the default fleet size, so
// the parallel scatter's theoretical win at N=4 is ~4x.
func newE22Cluster(shards, sources int, latency time.Duration) (*shard.Cluster, error) {
	c := shard.New(shard.Config{
		Shards:   shards,
		Injector: faulty.InjectorConfig{Latency: latency},
		Retry: faulty.RetryConfig{
			MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond,
			BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
		},
	})
	for i := 0; i < sources; i++ {
		src, err := webhouse.NewSource(fmt.Sprintf("src%02d", i),
			workload.CatalogType(), workload.RandomCatalog(4+i%5, int64(100+i)))
		if err != nil {
			return nil, err
		}
		if _, err := c.Register(src); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// e22Reset re-cools a source between timed rounds: it drops the source's
// knowledge and re-warms it with Query 1 (untimed). Without the reset the
// first completion makes Query 4 fully answerable and every later round
// would answer from knowledge alone, timing nothing.
func e22Reset(ctx context.Context, c *shard.Cluster, source string) error {
	if err := c.Invalidate(source); err != nil {
		return err
	}
	_, err := c.Explore(ctx, source, workload.Query1(200))
	return err
}

// benchE22 is the EXPERIMENTS.md E22 scan: cluster-wide Query-4 completion
// latency, parallel scatter vs the sequential baseline, at 1/2/4 shards,
// plus the one-shard-down pass at 4 shards.
func benchE22(sources, rounds int, latency time.Duration) e22Report {
	ctx := context.Background()
	q4 := workload.Query4()
	rep := e22Report{
		Sources:   sources,
		LatencyMs: float64(latency) / float64(time.Millisecond),
		Rounds:    rounds,
	}

	timed := func(c *shard.Cluster, parallel bool) ([]time.Duration, error) {
		durs := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			for _, name := range c.Sources() {
				if err := e22Reset(ctx, c, name); err != nil {
					return nil, fmt.Errorf("reset %s: %w", name, err)
				}
			}
			start := time.Now()
			var err error
			if parallel {
				_, err = c.ScatterComplete(ctx, q4)
			} else {
				_, err = c.ScatterCompleteSeq(ctx, q4)
			}
			if err != nil {
				return nil, err
			}
			durs = append(durs, time.Since(start))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs, nil
	}

	for _, n := range []int{1, 2, 4} {
		row := e22Row{Shards: n}
		for _, parallel := range []bool{true, false} {
			c, err := newE22Cluster(n, sources, latency)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e22:", err)
				os.Exit(1)
			}
			durs, err := timed(c, parallel)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e22:", err)
				os.Exit(1)
			}
			if parallel {
				row.ScatterP50Ms, row.ScatterP99Ms = pctMs(durs, 50), pctMs(durs, 99)
			} else {
				row.SeqP50Ms, row.SeqP99Ms = pctMs(durs, 50), pctMs(durs, 99)
			}
		}
		if row.ScatterP50Ms > 0 {
			row.SpeedupX = row.SeqP50Ms / row.ScatterP50Ms
		}
		fmt.Printf("e22 shards=%d: scatter p50 %.1fms p99 %.1fms, sequential p50 %.1fms p99 %.1fms (%.1fx)\n",
			n, row.ScatterP50Ms, row.ScatterP99Ms, row.SeqP50Ms, row.SeqP99Ms, row.SpeedupX)
		rep.Rows = append(rep.Rows, row)
	}

	// One-shard-down pass at 4 shards: warm everyone, kill the first
	// populated shard, and keep scattering. The down shard's sources must
	// come back flagged-degraded every round (the healthy ones exact), and
	// the outage must not stretch the healthy tail — fail-fast outage
	// errors plus the open breaker keep the dead shard cheap.
	c, err := newE22Cluster(4, sources, latency)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e22:", err)
		os.Exit(1)
	}
	for _, name := range c.Sources() {
		if err := e22Reset(ctx, c, name); err != nil {
			fmt.Fprintln(os.Stderr, "e22:", err)
			os.Exit(1)
		}
	}
	down := -1
	for _, g := range c.Groups() {
		if len(g.Sources()) > 0 {
			down = g.ID()
			break
		}
	}
	downG := c.Group(down)
	downG.SetDown(true)
	downSet := map[string]bool{}
	for _, name := range downG.Sources() {
		downSet[name] = true
	}
	out := e22Outage{Shards: 4, DownShard: down, Rounds: rounds, AllHealthyExact: true}
	durs := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		for _, name := range c.Sources() {
			if downSet[name] {
				continue // keep the dead shard's pre-outage knowledge
			}
			if err := e22Reset(ctx, c, name); err != nil {
				fmt.Fprintln(os.Stderr, "e22:", err)
				os.Exit(1)
			}
		}
		start := time.Now()
		sc, err := c.ScatterComplete(ctx, q4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e22:", err)
			os.Exit(1)
		}
		durs = append(durs, time.Since(start))
		degraded := 0
		for i := range sc.Answers {
			a := &sc.Answers[i]
			switch {
			case a.Degraded() && downSet[a.Source]:
				degraded++
			case a.Degraded():
				out.AllHealthyExact = false
			}
		}
		out.DegradedPerRound = degraded
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out.P99Ms = pctMs(durs, 99)
	fmt.Printf("e22 outage shards=4 down=%d: p99 %.1fms, %d degraded per round, healthy exact %v\n",
		down, out.P99Ms, out.DegradedPerRound, out.AllHealthyExact)
	rep.Outage = out
	return rep
}

// benchE23 is the EXPERIMENTS.md E23 soak: random two-shard instances, one
// whole shard down each round, a random linear query scattered cluster-wide.
// Each round contributes the scatter-wide certificate's completeness ratio
// and verdict; every non-empty certificate is re-verified the hard way — the
// certified sub-query evaluated over each reachable source's certain
// fragment must equal its evaluation over that source's world document.
func benchE23(rounds int) e23Report {
	ctx := context.Background()
	rep := e23Report{Shards: 2, SourcesPerRound: 3, Rounds: rounds, VerdictCounts: map[string]int{}}
	ratios := make([]float64, 0, rounds)
	var sum float64
	for i := 0; i < rounds; i++ {
		seed := int64(4000 + i)
		c := shard.New(shard.Config{Shards: 2})
		docs := map[string]tree.Tree{}
		for s := 0; s < rep.SourcesPerRound; s++ {
			name := fmt.Sprintf("s%d", s)
			doc := workload.RandomCatalog(3+(i+s)%4, seed*10+int64(s))
			src, err := webhouse.NewSource(name, workload.CatalogType(), doc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e23:", err)
				os.Exit(1)
			}
			if _, err := c.Register(src); err != nil {
				fmt.Fprintln(os.Stderr, "e23:", err)
				os.Exit(1)
			}
			docs[name] = doc
		}
		for name := range docs {
			if _, err := c.Explore(ctx, name, workload.Query1(int64(100+i%150))); err != nil {
				fmt.Fprintln(os.Stderr, "e23:", err)
				os.Exit(1)
			}
		}
		q := workload.RandomLinearQuery(workload.CatalogType(), seed, 2+i%3, 300)
		c.Group(i % 2).SetDown(true)

		sc, err := c.ScatterComplete(ctx, q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e23:", err)
			os.Exit(1)
		}
		cert := sc.Certificate
		rep.VerdictCounts[string(cert.Verdict)]++
		r := certify.CompletenessRatio(cert)
		ratios = append(ratios, r)
		sum += r
		for i := range sc.Answers {
			sa := &sc.Answers[i]
			if sa.Err == nil && sa.Certificate() != nil && sa.Certificate().Verdict == certify.Full {
				rep.HealthyFullAnswers++
			}
		}
		if cert.AtomsCertified == 0 {
			continue
		}
		rep.NonEmptyCertificates++
		subq := certify.Subquery(q, cert.Paths)
		for _, sa := range sc.Answers {
			if sa.Err != nil {
				continue
			}
			g, err := c.Owner(sa.Source)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e23:", err)
				os.Exit(1)
			}
			know, err := g.Webhouse().Knowledge(sa.Source)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e23:", err)
				os.Exit(1)
			}
			if !subq.Eval(know.DataTree()).Equal(subq.Eval(docs[sa.Source])) {
				rep.Overclaims++
			}
		}
	}
	sort.Float64s(ratios)
	rep.RatioMin = pctF(ratios, 0)
	rep.RatioP50 = pctF(ratios, 50)
	rep.RatioP90 = pctF(ratios, 90)
	rep.RatioMax = pctF(ratios, 100)
	if len(ratios) > 0 {
		rep.RatioMean = sum / float64(len(ratios))
	}
	fmt.Printf("e23: %d rounds, ratio min/p50/p90/max %.2f/%.2f/%.2f/%.2f mean %.2f, verdicts %v, %d non-empty, %d overclaims\n",
		rounds, rep.RatioMin, rep.RatioP50, rep.RatioP90, rep.RatioMax, rep.RatioMean,
		rep.VerdictCounts, rep.NonEmptyCertificates, rep.Overclaims)
	return rep
}

// hardEmptyConj mirrors the E18/E21 benchmark fixture: 2^k certificates,
// none satisfiable, so emptiness must exhaust the space.
func hardEmptyConj(k int) *conj.T {
	t := conj.New()
	t.Sigma["r"] = ctype.LabelTarget("r")
	t.Sigma["c"] = ctype.LabelTarget("x")
	t.Cond["c"] = cond.EqInt(3)
	t.Sigma["a"] = ctype.LabelTarget("x")
	t.Cond["a"] = cond.EqInt(1)
	t.Sigma["b"] = ctype.LabelTarget("x")
	t.Cond["b"] = cond.EqInt(2)
	cnf := conj.CNF{ctype.Disj{ctype.SAtom{{Sym: "c", Mult: dtd.One}}}}
	for i := 0; i < k; i++ {
		cnf = append(cnf, ctype.Disj{
			ctype.SAtom{{Sym: "a", Mult: dtd.One}},
			ctype.SAtom{{Sym: "b", Mult: dtd.One}},
		})
	}
	t.Mu["r"] = cnf
	t.Roots = []conj.RootChoice{{"r"}}
	return t
}

func post(client *http.Client, url, body string) (int, error) {
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// pctF returns the p-th percentile of the sorted float sample.
func pctF(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)-1)*p + 50
	return sorted[i/100]
}

// pctMs returns the p-th percentile of the sorted sample in milliseconds.
func pctMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)-1)*p + 50
	return float64(sorted[i/100]) / float64(time.Millisecond)
}
