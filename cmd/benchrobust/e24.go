package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"incxml/internal/store"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
)

// benchE24 is the EXPERIMENTS.md E24 durability benchmark, three questions:
//
//  1. What does journaling cost on the hot path? The same serial explore
//     workload with and without an attached store (WAL appends, no
//     per-record fsync) — p50/p99 per-request latency side by side.
//  2. How does snapshot size scale with repository size? One snapshot per
//     catalog size after a fixed exploration warm-up.
//  3. How does cold recovery time scale with WAL length? Replay-only
//     recovery (snapshots disabled) over increasing event counts.

type e24SnapRow struct {
	Products      int   `json:"products"`
	DocNodes      int   `json:"docNodes"`
	SnapshotBytes int64 `json:"snapshotBytes"`
}

type e24RecoveryRow struct {
	Events     int     `json:"events"`
	WALBytes   int64   `json:"walBytes"`
	Replayed   int     `json:"replayedEvents"`
	RecoveryMs float64 `json:"recoveryMs"`
}

type e24Report struct {
	Requests int `json:"requests"`
	// MemoryOnly / WithWAL are the serial explore latency distributions
	// without and with durability; P99Ratio = WithWAL.P99 / MemoryOnly.P99.
	MemoryOnly latencySummary   `json:"memoryOnly"`
	WithWAL    latencySummary   `json:"withWal"`
	P99Ratio   float64          `json:"p99Ratio"`
	Snapshots  []e24SnapRow     `json:"snapshots"`
	Recovery   []e24RecoveryRow `json:"recovery"`
}

func quietLogf(string, ...any) {}

// e24House builds a one-source webhouse over a random catalog.
func e24House(products int, seed int64) *webhouse.Webhouse {
	src, err := webhouse.NewSource("catalog", workload.CatalogType(), workload.RandomCatalog(products, seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "e24 source:", err)
		os.Exit(1)
	}
	wh := webhouse.New()
	wh.Register(src)
	return wh
}

// e24Drive explores n random linear queries, invalidating every 25 events
// to keep fold cost flat, and returns the per-explore latencies.
func e24Drive(wh *webhouse.Webhouse, n int) []time.Duration {
	ctx := context.Background()
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if i%25 == 24 {
			if err := wh.Invalidate("catalog"); err != nil {
				fmt.Fprintln(os.Stderr, "e24 invalidate:", err)
				os.Exit(1)
			}
		}
		q := workload.RandomLinearQuery(workload.CatalogType(), int64(i), 2+i%2, 60)
		start := time.Now()
		if _, err := wh.Explore(ctx, "catalog", q); err != nil {
			fmt.Fprintln(os.Stderr, "e24 explore:", err)
			os.Exit(1)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat
}

func e24Summary(lat []time.Duration) latencySummary {
	return latencySummary{
		P50Ms: pctMs(lat, 50),
		P95Ms: pctMs(lat, 95),
		P99Ms: pctMs(lat, 99),
		MaxMs: pctMs(lat, 100),
	}
}

func benchE24(requests int) e24Report {
	rep := e24Report{Requests: requests}

	// 1. Append overhead: identical workloads, memory-only vs journaled.
	wh := e24House(4, 1)
	e24Drive(wh, 50) // warm-up
	rep.MemoryOnly = e24Summary(e24Drive(wh, requests))

	whWAL := e24House(4, 1)
	dir, err := os.MkdirTemp("", "e24-wal-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e24 tempdir:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	s, _, err := store.OpenOrRecover(store.Options{Dir: dir, SnapEvery: -1, Logf: quietLogf}, whWAL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e24 store:", err)
		os.Exit(1)
	}
	e24Drive(whWAL, 50)
	rep.WithWAL = e24Summary(e24Drive(whWAL, requests))
	if rep.MemoryOnly.P99Ms > 0 {
		rep.P99Ratio = rep.WithWAL.P99Ms / rep.MemoryOnly.P99Ms
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "e24 close:", err)
		os.Exit(1)
	}

	// 2. Snapshot size vs repository size.
	ctx := context.Background()
	for _, products := range []int{2, 4, 8, 16, 32} {
		wh := e24House(products, int64(100+products))
		sdir, err := os.MkdirTemp("", "e24-snap-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 tempdir:", err)
			os.Exit(1)
		}
		st, _, err := store.OpenOrRecover(store.Options{Dir: sdir, SnapEvery: -1, Logf: quietLogf}, wh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 store:", err)
			os.Exit(1)
		}
		if _, err := wh.Explore(ctx, "catalog", workload.Query1(200)); err != nil {
			fmt.Fprintln(os.Stderr, "e24 explore:", err)
			os.Exit(1)
		}
		if _, err := wh.Explore(ctx, "catalog", workload.Query2()); err != nil {
			fmt.Fprintln(os.Stderr, "e24 explore:", err)
			os.Exit(1)
		}
		if err := st.SnapshotAll(); err != nil {
			fmt.Fprintln(os.Stderr, "e24 snapshot:", err)
			os.Exit(1)
		}
		info, err := os.Stat(filepath.Join(sdir, "snap", "catalog.snap"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 stat:", err)
			os.Exit(1)
		}
		doc, _, _, _, err := wh.Export("catalog")
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 export:", err)
			os.Exit(1)
		}
		rep.Snapshots = append(rep.Snapshots, e24SnapRow{
			Products: products, DocNodes: doc.Size(), SnapshotBytes: info.Size(),
		})
		st.Close()
		os.RemoveAll(sdir)
	}

	// 3. Cold recovery time vs WAL length (replay-only: snapshots disabled).
	for _, events := range []int{10, 50, 100, 250} {
		wh := e24House(4, 7)
		rdir, err := os.MkdirTemp("", "e24-rec-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 tempdir:", err)
			os.Exit(1)
		}
		st, _, err := store.OpenOrRecover(store.Options{Dir: rdir, SnapEvery: -1, Logf: quietLogf}, wh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 store:", err)
			os.Exit(1)
		}
		e24Drive(wh, events)
		walBytes := st.WALSize()
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "e24 close:", err)
			os.Exit(1)
		}

		cold := e24House(4, 7)
		start := time.Now()
		st2, rec, err := store.OpenOrRecover(store.Options{Dir: rdir, SnapEvery: -1, Logf: quietLogf}, cold)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e24 recover:", err)
			os.Exit(1)
		}
		rep.Recovery = append(rep.Recovery, e24RecoveryRow{
			Events: events, WALBytes: walBytes,
			Replayed: rec.ReplayedEvents, RecoveryMs: float64(elapsed.Microseconds()) / 1000,
		})
		st2.Close()
		os.RemoveAll(rdir)
	}

	fmt.Printf("e24 durability: explore p99 wal=%.3fms mem=%.3fms ratio=%.3f; cold recovery %d events=%.1fms\n",
		rep.WithWAL.P99Ms, rep.MemoryOnly.P99Ms, rep.P99Ratio,
		rep.Recovery[len(rep.Recovery)-1].Events, rep.Recovery[len(rep.Recovery)-1].RecoveryMs)
	return rep
}
