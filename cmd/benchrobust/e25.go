package main

// EXPERIMENTS.md E25: the Section-4 extension zoo under realistic mixed
// traffic. The workload generator produces session-shaped arrivals —
// zipfian source popularity, explore → refine → complete acquisition,
// blowup refinement chains, extension probes with reduction riders, and
// twig-from-examples sessions — and this block drives the whole stream
// through the HTTP surface, recording per-class latency percentiles,
// status and verdict splits, and the soundness tally: every definite
// extension verdict and reduction decision is re-checked against the
// in-package exact oracles, and mismatches must stay zero.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"incxml/internal/extquery"
	"incxml/internal/reductions"
	"incxml/internal/serve"
	"incxml/internal/tree"
	"incxml/internal/workload"
)

// e25ClassRow aggregates one query class of the mixed stream.
type e25ClassRow struct {
	Class    string         `json:"class"`
	Requests int            `json:"requests"`
	P50Ms    float64        `json:"p50Ms"`
	P99Ms    float64        `json:"p99Ms"`
	Statuses map[string]int `json:"statuses"`
	// Verdicts splits the extension exactness verdicts (extended ops) and
	// reduction decisions (reduction ops) this class produced; classic
	// ps-query ops leave it empty.
	Verdicts map[string]int `json:"verdicts,omitempty"`
}

// e25Report is the EXPERIMENTS.md E25 block.
type e25Report struct {
	Seed     int64   `json:"seed"`
	Sessions int     `json:"sessions"`
	Ops      int     `json:"ops"`
	ZipfS    float64 `json:"zipfS"`
	Mix      string  `json:"mix"`
	Sources  int     `json:"sources"`
	// KindCounts splits the stream by serving operation.
	KindCounts map[string]int `json:"kindCounts"`
	// SourceCounts shows the zipfian skew the generator produced
	// (session-opening ops only, blowup sessions excluded).
	SourceCounts map[string]int `json:"sourceCounts"`
	PerClass     []e25ClassRow  `json:"perClass"`
	// ExactMismatches counts definite served verdicts that contradicted
	// the in-package oracles — the never-wrong contract says zero.
	ExactMismatches int `json:"exactMismatches"`
	// TraceOut is the replayable trace file, when one was written.
	TraceOut string `json:"traceOut,omitempty"`
}

// benchE25 generates the mixed stream and drives it serially (sessions
// are ordered; later ops depend on earlier explores) against a full
// server with extra random-catalog sources.
func benchE25(sessions int, zipfS float64, mixSpec string, seed int64, traceOut string) e25Report {
	mix := workload.DefaultMix()
	if mixSpec != "" {
		var err error
		mix, err = workload.ParseMix(mixSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e25:", err)
			os.Exit(1)
		}
	}

	const extraSources = 4
	const serveSeed = 7
	s, err := serve.New(serve.Config{
		Timeout:      10 * time.Second,
		ExtraSources: extraSources,
		Seed:         serveSeed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "e25:", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sources := []string{"catalog"}
	worlds := map[string]tree.Tree{"catalog": workload.PaperCatalog()}
	for i := 0; i < extraSources; i++ {
		name := fmt.Sprintf("cat%02d", i)
		sources = append(sources, name)
		// Mirror serve.New's registration so the oracle sees the same
		// world document the server holds.
		worlds[name] = workload.RandomCatalog(4+i%5, serveSeed+int64(1000+i))
	}

	cfg := workload.TrafficConfig{
		Seed:     seed,
		Sessions: sessions,
		Sources:  sources,
		ZipfS:    zipfS,
		Mix:      mix,
	}
	ops, err := workload.GenerateTraffic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e25:", err)
		os.Exit(1)
	}

	rep := e25Report{
		Seed: seed, Sessions: sessions, Ops: len(ops), ZipfS: cfg.ZipfS,
		Mix: mix.String(), Sources: len(sources),
		KindCounts: map[string]int{}, SourceCounts: map[string]int{},
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e25:", err)
			os.Exit(1)
		}
		if err := workload.WriteTrace(f, cfg, ops); err != nil {
			fmt.Fprintln(os.Stderr, "e25:", err)
			os.Exit(1)
		}
		f.Close()
		rep.TraceOut = traceOut
	}

	type sample struct {
		dur     time.Duration
		status  int
		verdict string
	}
	byClass := map[workload.QueryClass][]sample{}
	client := ts.Client()
	for _, op := range ops {
		path, body, err := serve.RequestForOp(op)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e25:", err)
			os.Exit(1)
		}
		rep.KindCounts[string(op.Kind)]++
		if op.Step == 0 && op.Class != workload.TrafficBlowup {
			rep.SourceCounts[op.Source]++
		}
		start := time.Now()
		status, respBody := postRead(client, ts.URL+path, body)
		dur := time.Since(start)

		smp := sample{dur: dur, status: status}
		if status == http.StatusOK {
			switch op.Kind {
			case workload.OpExtended:
				class, exactV, nodes := extEnvelopeFields(respBody)
				smp.verdict = exactV
				if !extquery.Class(class).Tractable() && exactV != "unknown" {
					rep.ExactMismatches++
				}
				if exactV == "yes" {
					if want := op.Ext.Answer(worlds[op.Source]).Size(); nodes != want {
						rep.ExactMismatches++
					}
				}
			case workload.OpReduction:
				decision := extensionField(respBody, "decision")
				smp.verdict = decision
				if decision != "unknown" && decision != e25ReductionOracle(op.Red) {
					rep.ExactMismatches++
				}
			}
		}
		byClass[op.Class] = append(byClass[op.Class], smp)
	}

	for _, class := range workload.TrafficClasses() {
		samples := byClass[class]
		if len(samples) == 0 {
			continue
		}
		row := e25ClassRow{Class: string(class), Requests: len(samples),
			Statuses: map[string]int{}, Verdicts: map[string]int{}}
		durs := make([]time.Duration, 0, len(samples))
		for _, smp := range samples {
			durs = append(durs, smp.dur)
			row.Statuses[fmt.Sprint(smp.status)]++
			if smp.verdict != "" {
				row.Verdicts[smp.verdict]++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		row.P50Ms, row.P99Ms = pctMs(durs, 50), pctMs(durs, 99)
		if len(row.Verdicts) == 0 {
			row.Verdicts = nil
		}
		rep.PerClass = append(rep.PerClass, row)
		fmt.Printf("e25 class=%s requests=%d p50=%.2fms p99=%.2fms statuses=%v verdicts=%v\n",
			class, row.Requests, row.P50Ms, row.P99Ms, row.Statuses, row.Verdicts)
	}
	fmt.Printf("e25: %d sessions, %d ops, mix %q, %d exact mismatches\n",
		sessions, len(ops), rep.Mix, rep.ExactMismatches)
	return rep
}

// postRead posts a body and returns the status code and response bytes.
func postRead(client *http.Client, url, body string) (int, []byte) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// extEnvelopeFields pulls the extension class, exactness verdict, and
// answer node count out of a v1 envelope.
func extEnvelopeFields(body []byte) (class, exactV string, nodes int) {
	var m map[string]any
	if json.Unmarshal(body, &m) != nil {
		return
	}
	if ext, ok := m["extension"].(map[string]any); ok {
		class, _ = ext["class"].(string)
		exactV, _ = ext["exactV"].(string)
	}
	if ans, ok := m["answer"].(map[string]any); ok {
		if f, ok := ans["nodes"].(float64); ok {
			nodes = int(f)
		}
	}
	return
}

// extensionField pulls one string field out of the envelope's extension
// section.
func extensionField(body []byte, field string) string {
	var m map[string]any
	if json.Unmarshal(body, &m) != nil {
		return ""
	}
	if ext, ok := m["extension"].(map[string]any); ok {
		s, _ := ext[field].(string)
		return s
	}
	return ""
}

// e25ReductionOracle evaluates a probe with the brute-force deciders.
func e25ReductionOracle(spec *workload.ReductionSpec) string {
	lits := func(cl []int) []reductions.Lit {
		out := make([]reductions.Lit, len(cl))
		for i, v := range cl {
			if v < 0 {
				out[i] = reductions.Lit{Var: -v, Neg: true}
			} else {
				out[i] = reductions.Lit{Var: v}
			}
		}
		return out
	}
	switch spec.Kind {
	case "3sat":
		f := reductions.Formula{NumVars: spec.NumVars}
		for _, cl := range spec.Clauses {
			f.Clauses = append(f.Clauses, reductions.Clause(lits(cl)))
		}
		if f.Satisfiable() {
			return "yes"
		}
		return "no"
	case "dnf":
		d := reductions.DNF{NumVars: spec.NumVars}
		for _, cl := range spec.Clauses {
			l := lits(cl)
			d.Disjuncts = append(d.Disjuncts, reductions.Disjunct{l[0], l[1], l[2]})
		}
		if d.Valid() {
			return "yes"
		}
		return "no"
	}
	return ""
}
