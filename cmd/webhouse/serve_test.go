package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const query4Body = `catalog
  product
    name
    cat {= 1}
      subcat {= 2}
`

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON response %q: %v", rec.Body.String(), err)
	}
	return m
}

// section fetches a nested object of the v1 answer envelope.
func section(t *testing.T, m map[string]any, key string) map[string]any {
	t.Helper()
	obj, ok := m[key].(map[string]any)
	if !ok {
		t.Fatalf("envelope section %q missing or not an object: %v", key, m[key])
	}
	return obj
}

// A healthy server: explore builds knowledge, /local answers from it,
// /complete returns the exact (non-degraded) answer, /stats reports the
// traffic.
func TestServeHealthySession(t *testing.T) {
	s, err := newServer(2*time.Second, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := s.handler()

	rec := post(t, h, "/explore", "catalog\n  product\n    name\n    price {< 200}\n    cat {= 1}\n      subcat\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("/explore: %d %s", rec.Code, rec.Body)
	}
	if m := decode(t, rec); section(t, m, "answer")["nodes"].(float64) == 0 {
		t.Error("/explore returned an empty answer on the paper catalog")
	}

	rec = post(t, h, "/local", query4Body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/local: %d %s", rec.Code, rec.Body)
	}
	m := decode(t, rec)
	if section(t, m, "local")["fully"].(bool) {
		t.Error("query 4 should not be fully answerable after one exploration")
	}
	if section(t, m, "completeness")["verdict"] == "full" {
		t.Error("unanswerable query certified complete")
	}

	rec = post(t, h, "/complete", query4Body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/complete: %d %s", rec.Code, rec.Body)
	}
	m = decode(t, rec)
	if m["degraded"].(bool) {
		t.Error("healthy source produced a degraded completion")
	}
	if section(t, m, "completion")["localQueries"].(float64) == 0 {
		t.Error("completion reported no local queries")
	}
	if section(t, m, "completeness")["verdict"] != "full" {
		t.Errorf("exact completion certified %v, want full", section(t, m, "completeness")["verdict"])
	}

	req := httptest.NewRequest("GET", "/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "DegradedAnswers") {
		t.Errorf("stats missing serving counters: %s", rec.Body)
	}

	rec = post(t, h, "/local", "not a query {{{")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed query: %d, want 400", rec.Code)
	}
}

// With injected latency far beyond the per-request timeout, handlers
// answer promptly with 504 instead of hanging for the source.
func TestServeDeadlineMapsTo504(t *testing.T) {
	s, err := newServer(30*time.Millisecond, 0, 5*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := s.handler()
	start := time.Now()
	rec := post(t, h, "/explore", query4Body)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("/explore against a stalled source: %d, want 504 (%s)", rec.Code, rec.Body)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("handler blocked %v on a 30ms request deadline", el)
	}
}

// When the source fails every call, a completion posed after a successful
// exploration degrades: 200 with degraded=true and a cause, not an error.
func TestServeDegradedCompletion(t *testing.T) {
	s, err := newServer(2*time.Second, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := s.handler()
	rec := post(t, h, "/explore", "catalog\n  product\n    name\n    price {< 200}\n    cat {= 1}\n      subcat\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("/explore: %d %s", rec.Code, rec.Body)
	}
	// Take the source down after the exploration succeeded.
	s.inj.SetDown(true)
	rec = post(t, h, "/complete", query4Body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/complete during outage: %d %s (should degrade, not fail)", rec.Code, rec.Body)
	}
	m := decode(t, rec)
	if !m["degraded"].(bool) {
		t.Error("completion during outage not flagged degraded")
	}
	if c, ok := m["cause"].(string); !ok || !strings.Contains(c, "unavailable") {
		t.Errorf("degraded completion cause = %v", m["cause"])
	}
	if !strings.Contains(rec.Body.String(), "answer") {
		t.Error("degraded completion carries no approximate answer")
	}
}
