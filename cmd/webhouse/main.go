// Command webhouse runs the paper's Webhouse in one of two modes.
//
// With no arguments it replays a scripted session over the paper's catalog
// example: it registers a simulated source, explores it with the running
// example's queries, answers further queries locally where possible, and
// completes the rest via mediator-generated local queries — reproducing
// the narrative of Sections 1 and 3.4.
//
// `webhouse serve` starts an HTTP server over the same catalog source with
// per-request timeouts and, optionally, injected source faults — a small
// demonstration of the serving layer's failure model: when the source is
// slow or down, completions degrade to the approximate local answer
// (Theorem 3.14) instead of blocking or erroring. See README.md for the
// endpoints.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"incxml/internal/faulty"
	"incxml/internal/query"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
	"incxml/internal/xmlio"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "webhouse:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "webhouse:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	ctx := context.Background()
	src, err := webhouse.NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		return err
	}
	wh := webhouse.New()
	wh.Register(src)
	fmt.Fprintln(w, "== registered source 'catalog' (4 products; contents hidden from the webhouse)")

	fmt.Fprintln(w, "\n== exploring: Query 1 (elec products under $200)")
	a1, err := wh.Explore(ctx, "catalog", workload.Query1(200))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a1.Size())

	fmt.Fprintln(w, "== exploring: Query 2 (pictured cameras, pictures extracted)")
	a2, err := wh.Explore(ctx, "catalog", workload.Query2())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a2.Size())

	know, err := wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== current knowledge: representation size %d, data tree %d nodes\n",
		know.Size(), know.DataTree().Size())

	fmt.Fprintln(w, "\n== asking locally: Query 3 (cheap pictured cameras)")
	la, err := wh.AnswerLocally(ctx, "catalog", workload.Query3(100))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v (Example 3.4)\n", la.Fully)
	fmt.Fprintf(w, "   exact local answer: %d nodes\n", la.Exact.Size())

	fmt.Fprintln(w, "\n== asking locally: Query 4 (all cameras)")
	la4, err := wh.AnswerLocally(ctx, "catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v; certainly nonempty: %v\n", la4.Fully, la4.CertainlyNonEmpty)
	fmt.Fprintf(w, "   known cameras now: %d answer nodes; unseen expensive/pictureless cameras may exist\n",
		la4.Exact.Size())

	fmt.Fprintln(w, "\n== completing Query 4 against the source (Theorem 3.19)")
	ca, err := wh.AnswerComplete(ctx, "catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   %d local queries executed; exact answer: %d nodes\n", ca.LocalQueries, ca.Answer.Size())
	served, _ := src.Served()
	fmt.Fprintf(w, "   source served %d queries in total\n", served)

	fmt.Fprintln(w, "\n== final incomplete tree (browsable XML):")
	know, err = wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	return xmlio.WriteIncomplete(w, know)
}

// server holds the serving state of `webhouse serve`.
type server struct {
	wh      *webhouse.Webhouse
	source  string
	timeout time.Duration
	inj     *faulty.Injector
}

// newServer registers the paper's catalog source behind a fault injector
// (a no-op at zero fail-rate and latency) and a retrying client, so the
// serving path always exercises the failure model.
func newServer(timeout time.Duration, failRate float64, latency time.Duration, seed int64) (*server, error) {
	src, err := webhouse.NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		return nil, err
	}
	wh := webhouse.New()
	wh.Register(src)
	inj := faulty.NewInjector(src.Name, src, faulty.InjectorConfig{
		Latency: latency, FailRate: failRate, Seed: seed,
	})
	if err := wh.SetClient(src.Name, faulty.NewRetryClient(inj, faulty.RetryConfig{Seed: seed})); err != nil {
		return nil, err
	}
	return &server{wh: wh, source: src.Name, timeout: timeout, inj: inj}, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request deadline")
	failRate := fs.Float64("fail-rate", 0, "injected transient source-failure probability in [0,1]")
	latency := fs.Duration("latency", 0, "injected per-call source latency")
	seed := fs.Int64("seed", 1, "fault-injection RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := newServer(*timeout, *failRate, *latency, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("webhouse: serving catalog on %s (timeout %v, fail-rate %g, latency %v)\n",
		*addr, *timeout, *failRate, *latency)
	return http.ListenAndServe(*addr, s.handler())
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /explore", s.withDeadline(s.handleExplore))
	mux.HandleFunc("POST /local", s.withDeadline(s.handleLocal))
	mux.HandleFunc("POST /complete", s.withDeadline(s.handleComplete))
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// withDeadline derives the per-request context: the configured timeout on
// top of the client's own cancellation.
func (s *server) withDeadline(h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h(ctx, w, r)
	}
}

// readQuery parses the ps-query in the request body.
func readQuery(w http.ResponseWriter, r *http.Request) (query.Query, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return query.Query{}, false
	}
	q, err := query.Parse(string(body))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad query: %v", err), http.StatusBadRequest)
		return query.Query{}, false
	}
	return q, true
}

// fail maps serving errors to HTTP statuses: deadline and unavailability
// become 504/503, everything else 500.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, faulty.ErrUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleExplore(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	a, err := s.wh.Explore(ctx, s.source, q)
	if err != nil {
		fail(w, err)
		return
	}
	xml, err := xmlio.Marshal(a)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, map[string]any{"nodes": a.Size(), "answer": xml})
}

func (s *server) handleLocal(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	la, err := s.wh.AnswerLocally(ctx, s.source, q)
	if err != nil {
		fail(w, err)
		return
	}
	xml, err := xmlio.Marshal(la.Exact)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"fully":             la.Fully,
		"certainlyNonEmpty": la.CertainlyNonEmpty,
		"possiblyNonEmpty":  la.PossiblyNonEmpty,
		"nodes":             la.Exact.Size(),
		"answer":            xml,
	})
}

func (s *server) handleComplete(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	ca, err := s.wh.AnswerComplete(ctx, s.source, q)
	if err != nil {
		fail(w, err)
		return
	}
	xml, err := xmlio.Marshal(ca.Answer)
	if err != nil {
		fail(w, err)
		return
	}
	resp := map[string]any{
		"degraded":     ca.Degraded,
		"localQueries": ca.LocalQueries,
		"nodes":        ca.Answer.Size(),
		"answer":       xml,
	}
	if ca.Degraded && ca.Cause != nil {
		resp["cause"] = ca.Cause.Error()
	}
	writeJSON(w, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.wh.Stats())
}
