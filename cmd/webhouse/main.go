// Command webhouse runs the paper's Webhouse in one of two modes.
//
// With no arguments it replays a scripted session over the paper's catalog
// example: it registers a simulated source, explores it with the running
// example's queries, answers further queries locally where possible, and
// completes the rest via mediator-generated local queries — reproducing
// the narrative of Sections 1 and 3.4.
//
// `webhouse serve` starts an HTTP server over the catalog source plus the
// Example 3.2 "blowup" source, with per-request timeouts, admission
// control (-max-inflight/-queue), per-request solver step budgets
// (-budget) and, optionally, injected source faults — a demonstration of
// the serving layer's failure model: when the source is slow or down,
// completions degrade to the approximate local answer (Theorem 3.14), and
// when a request's budget runs out the solvers degrade to flagged sound
// approximations (Proposition 3.13) instead of running hot. See
// internal/serve and README.md for the endpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incxml/internal/faulty"
	"incxml/internal/serve"
	"incxml/internal/webhouse"
	"incxml/internal/workload"
	"incxml/internal/xmlio"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "webhouse:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "webhouse:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	ctx := context.Background()
	src, err := webhouse.NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		return err
	}
	wh := webhouse.New()
	wh.Register(src)
	fmt.Fprintln(w, "== registered source 'catalog' (4 products; contents hidden from the webhouse)")

	fmt.Fprintln(w, "\n== exploring: Query 1 (elec products under $200)")
	a1, err := wh.Explore(ctx, "catalog", workload.Query1(200))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a1.Size())

	fmt.Fprintln(w, "== exploring: Query 2 (pictured cameras, pictures extracted)")
	a2, err := wh.Explore(ctx, "catalog", workload.Query2())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a2.Size())

	know, err := wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== current knowledge: representation size %d, data tree %d nodes\n",
		know.Size(), know.DataTree().Size())

	fmt.Fprintln(w, "\n== asking locally: Query 3 (cheap pictured cameras)")
	la, err := wh.AnswerLocally(ctx, "catalog", workload.Query3(100))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v (Example 3.4)\n", la.Fully)
	fmt.Fprintf(w, "   exact local answer: %d nodes\n", la.Exact.Size())

	fmt.Fprintln(w, "\n== asking locally: Query 4 (all cameras)")
	la4, err := wh.AnswerLocally(ctx, "catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v; certainly nonempty: %v\n", la4.Fully, la4.CertainlyNonEmpty)
	fmt.Fprintf(w, "   known cameras now: %d answer nodes; unseen expensive/pictureless cameras may exist\n",
		la4.Exact.Size())

	fmt.Fprintln(w, "\n== completing Query 4 against the source (Theorem 3.19)")
	ca, err := wh.AnswerComplete(ctx, "catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   %d local queries executed; exact answer: %d nodes\n", ca.LocalQueries, ca.Answer.Size())
	served, _ := src.Served()
	fmt.Fprintf(w, "   source served %d queries in total\n", served)

	fmt.Fprintln(w, "\n== final incomplete tree (browsable XML):")
	know, err = wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	return xmlio.WriteIncomplete(w, know)
}

// server adapts the serve.Server to the command: it keeps a handle on the
// catalog fault injector so the scripted fault scenarios (and tests) can
// toggle outages directly.
type server struct {
	*serve.Server
	inj *faulty.Injector
}

// newServer builds a serve.Server with default admission limits; the full
// flag set goes through runServe.
func newServer(timeout time.Duration, failRate float64, latency time.Duration, seed int64) (*server, error) {
	s, err := serve.New(serve.Config{
		Timeout: timeout, FailRate: failRate, Latency: latency, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &server{Server: s, inj: s.Injector("catalog")}, nil
}

func (s *server) handler() http.Handler { return s.Handler() }

// runServe serves until a shutdown signal (SIGTERM/SIGINT) arrives, then
// drains gracefully: new answer requests shed with 503, inflight requests
// finish, a durable server flushes its final snapshots, and the process
// exits 0.
func runServe(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveUntil(ctx, args, os.Stdout)
}

// serveUntil is runServe with the lifetime and output injectable: serving
// ends when ctx is cancelled (the signal path in production, the test
// harness otherwise), and every banner goes to out.
func serveUntil(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request deadline (includes queue wait)")
	failRate := fs.Float64("fail-rate", 0, "injected transient source-failure probability in [0,1]")
	latency := fs.Duration("latency", 0, "injected per-call source latency")
	seed := fs.Int64("seed", 1, "fault-injection RNG seed")
	maxInflight := fs.Int("max-inflight", serve.DefaultMaxInflight, "max concurrently executing requests")
	queue := fs.Int("queue", serve.DefaultQueue, "max requests waiting for an execution slot")
	budgetSteps := fs.Int64("budget", 0, "per-request solver step budget (0 = unlimited; deadline still applies)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/* on the serving mux")
	traceOn := fs.Bool("trace", false, "attach a per-request span trace, echoed in the X-Trace response header")
	shards := fs.Int("shards", 1, "shard groups the source fleet is spread over (scatter routes fan out per shard)")
	extraSources := fs.Int("extra-sources", 0, "additional random catalog sources (cat00...) beyond catalog+blowup")
	dataDir := fs.String("data-dir", "", "persist snapshots + WAL per shard under this directory and warm-start from it (empty = in-memory)")
	snapEvery := fs.Int("snap-every", 0, "snapshot cadence in WAL appends (0 = store default, negative = only on drain)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Timeout: *timeout, MaxInflight: *maxInflight, Queue: *queue, Budget: *budgetSteps,
		FailRate: *failRate, Latency: *latency, Seed: *seed,
		Pprof: *pprofOn, Trace: *traceOn,
		Shards: *shards, ExtraSources: *extraSources,
		DataDir: *dataDir, SnapEvery: *snapEvery,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "webhouse: serving %d sources over %d shard(s) on %s (timeout %v, inflight %d, queue %d, budget %d, fail-rate %g, latency %v, pprof %v, trace %v)\n",
		len(s.Cluster().Sources()), s.Cluster().Shards(), ln.Addr(), *timeout, *maxInflight, *queue, *budgetSteps, *failRate, *latency, *pprofOn, *traceOn)
	if rec := s.Recovery(); rec != nil {
		fmt.Fprintf(out, "webhouse: warm start from %s: %d snapshots loaded, %d events replayed, %d corrupt records dropped, %d snapshot fallbacks\n",
			*dataDir, rec.SnapshotsLoaded, rec.ReplayedEvents, rec.CorruptRecordsDropped, rec.SnapshotFallbacks)
		if len(rec.Quarantined) > 0 {
			fmt.Fprintf(out, "webhouse: QUARANTINED sources (serving degraded from pristine knowledge; files set aside): %v\n", rec.Quarantined)
		}
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "webhouse: shutdown signal received; draining")
	dctx, cancel := context.WithTimeout(context.Background(), *timeout+10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintln(out, "webhouse: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "webhouse: drained cleanly")
	return nil
}
