// Command webhouse runs a scripted Webhouse session over the paper's
// catalog example: it registers a simulated source, explores it with the
// running example's queries, answers further queries locally where
// possible, and completes the rest via mediator-generated local queries —
// reproducing the narrative of Sections 1 and 3.4.
package main

import (
	"fmt"
	"io"
	"os"

	"incxml/internal/webhouse"
	"incxml/internal/workload"
	"incxml/internal/xmlio"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "webhouse:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	src, err := webhouse.NewSource("catalog", workload.CatalogType(), workload.PaperCatalog())
	if err != nil {
		return err
	}
	wh := webhouse.New()
	wh.Register(src)
	fmt.Fprintln(w, "== registered source 'catalog' (4 products; contents hidden from the webhouse)")

	fmt.Fprintln(w, "\n== exploring: Query 1 (elec products under $200)")
	a1, err := wh.Explore("catalog", workload.Query1(200))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a1.Size())

	fmt.Fprintln(w, "== exploring: Query 2 (pictured cameras, pictures extracted)")
	a2, err := wh.Explore("catalog", workload.Query2())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   answer: %d nodes\n", a2.Size())

	know, err := wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== current knowledge: representation size %d, data tree %d nodes\n",
		know.Size(), know.DataTree().Size())

	fmt.Fprintln(w, "\n== asking locally: Query 3 (cheap pictured cameras)")
	la, err := wh.AnswerLocally("catalog", workload.Query3(100))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v (Example 3.4)\n", la.Fully)
	fmt.Fprintf(w, "   exact local answer: %d nodes\n", la.Exact.Size())

	fmt.Fprintln(w, "\n== asking locally: Query 4 (all cameras)")
	la4, err := wh.AnswerLocally("catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   fully answerable: %v; certainly nonempty: %v\n", la4.Fully, la4.CertainlyNonEmpty)
	fmt.Fprintf(w, "   known cameras now: %d answer nodes; unseen expensive/pictureless cameras may exist\n",
		la4.Exact.Size())

	fmt.Fprintln(w, "\n== completing Query 4 against the source (Theorem 3.19)")
	exact, n, err := wh.AnswerComplete("catalog", workload.Query4())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "   %d local queries executed; exact answer: %d nodes\n", n, exact.Size())
	fmt.Fprintf(w, "   source served %d queries in total\n", src.QueriesServed)

	fmt.Fprintln(w, "\n== final incomplete tree (browsable XML):")
	know, err = wh.Knowledge("catalog")
	if err != nil {
		return err
	}
	return xmlio.WriteIncomplete(w, know)
}
