package main

import (
	"strings"
	"testing"
)

// TestRunSession executes the scripted session end to end and checks the
// paper-anchored milestones appear in the transcript.
func TestRunSession(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"registered source 'catalog'",
		"fully answerable: true (Example 3.4)",
		"fully answerable: false",
		"exact answer: 13 nodes",
		"<incomplete-tree>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("session transcript missing %q", want)
		}
	}
}
