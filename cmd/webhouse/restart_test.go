package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for serveUntil.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// startServe runs serveUntil on an ephemeral port and waits for the listen
// banner; the returned stop function triggers the graceful drain and waits
// for exit.
func startServe(t *testing.T, args []string) (base string, out *syncBuffer, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- serveUntil(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, out, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeCommandRestartRoundTrip: the real command, started with
// -data-dir, drains cleanly on shutdown (exit nil = exit code 0) and a
// second invocation warm-starts from the same directory, announces the
// recovery in its banner, and serves the same certified local answer
// byte for byte.
func TestServeCommandRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-timeout", "5s"}

	base, _, stop := startServe(t, args)
	if code, body := httpPost(t, base+"/explore", query4Body); code != http.StatusOK {
		t.Fatalf("/explore: %d %s", code, body)
	}
	code, want := httpPost(t, base+"/local", query4Body)
	if code != http.StatusOK {
		t.Fatalf("/local: %d %s", code, want)
	}
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}

	base2, out2, stop2 := startServe(t, args)
	if !strings.Contains(out2.String(), "warm start from") {
		t.Fatalf("second start has no warm-start banner:\n%s", out2.String())
	}
	code, got := httpPost(t, base2+"/local", query4Body)
	if code != http.StatusOK {
		t.Fatalf("restart /local: %d %s", code, got)
	}
	if got != want {
		t.Fatalf("local answer changed across restart:\n got: %s\nwant: %s", got, want)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if !strings.Contains(out2.String(), "drained cleanly") {
		t.Fatalf("no clean-drain banner:\n%s", out2.String())
	}
}
