package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for serveUntil.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// startServe runs serveUntil on an ephemeral port and waits for the listen
// banner; the returned stop function triggers the graceful drain and waits
// for exit.
func startServe(t *testing.T, args []string) (base string, out *syncBuffer, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- serveUntil(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, out, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeCommandRestartRoundTrip: the real command, started with
// -data-dir, drains cleanly on shutdown (exit nil = exit code 0) and a
// second invocation warm-starts from the same directory, announces the
// recovery in its banner, and serves the same certified local answer
// byte for byte.
func TestServeCommandRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-timeout", "5s"}

	base, _, stop := startServe(t, args)
	if code, body := httpPost(t, base+"/explore", query4Body); code != http.StatusOK {
		t.Fatalf("/explore: %d %s", code, body)
	}
	code, want := httpPost(t, base+"/local", query4Body)
	if code != http.StatusOK {
		t.Fatalf("/local: %d %s", code, want)
	}
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}

	base2, out2, stop2 := startServe(t, args)
	if !strings.Contains(out2.String(), "warm start from") {
		t.Fatalf("second start has no warm-start banner:\n%s", out2.String())
	}
	code, got := httpPost(t, base2+"/local", query4Body)
	if code != http.StatusOK {
		t.Fatalf("restart /local: %d %s", code, got)
	}
	if got != want {
		t.Fatalf("local answer changed across restart:\n got: %s\nwant: %s", got, want)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if !strings.Contains(out2.String(), "drained cleanly") {
		t.Fatalf("no clean-drain banner:\n%s", out2.String())
	}
}

const priceQueryBody = `catalog
  product
    name
    price {< 200}
`

// TestServeCommandExploreAfterRestart: a session that keeps acquiring
// knowledge after a warm restart must be indistinguishable from one that
// never restarted. A restarted server explores a *new* query and serves
// its certified local answer; a fresh reference server (separate data
// dir, same flags) runs the identical full session without any restart.
// The envelopes must match byte for byte — fingerprint included. This
// covers ROADMAP item 6: before the fingerprint became a pure function of
// the answer tree, interning history (which differed between the
// warm-started and the never-restarted process) leaked into the
// Completeness.Fingerprint field.
func TestServeCommandExploreAfterRestart(t *testing.T) {
	session := func(base string) {
		for _, step := range []struct{ path, body string }{
			{"/explore", query4Body},
			{"/local", query4Body},
		} {
			if code, body := httpPost(t, base+step.path, step.body); code != http.StatusOK {
				t.Fatalf("%s: %d %s", step.path, code, body)
			}
		}
	}
	exploreAndLocal := func(base string) string {
		if code, body := httpPost(t, base+"/explore", priceQueryBody); code != http.StatusOK {
			t.Fatalf("/explore (price): %d %s", code, body)
		}
		code, body := httpPost(t, base+"/local", priceQueryBody)
		if code != http.StatusOK {
			t.Fatalf("/local (price): %d %s", code, body)
		}
		return body
	}

	// Server under test: acquire, restart, then keep acquiring.
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-timeout", "5s"}
	base, _, stop := startServe(t, args)
	session(base)
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	base2, out2, stop2 := startServe(t, args)
	if !strings.Contains(out2.String(), "warm start from") {
		t.Fatalf("second start has no warm-start banner:\n%s", out2.String())
	}
	got := exploreAndLocal(base2)
	if err := stop2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// Reference server: same session, no restart, fresh data dir.
	refArgs := []string{"-data-dir", t.TempDir(), "-timeout", "5s"}
	refBase, _, refStop := startServe(t, refArgs)
	session(refBase)
	want := exploreAndLocal(refBase)
	if err := refStop(); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}

	if got != want {
		t.Fatalf("explore-after-restart answer diverged from never-restarted session:\n got: %s\nwant: %s", got, want)
	}
}
