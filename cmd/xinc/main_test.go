package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incxml/internal/workload"
	"incxml/internal/xmlio"
)

// fixture writes the catalog type, document and queries into a temp dir.
func fixture(t *testing.T) (typePath, docPath, q1Path, q4Path string) {
	t.Helper()
	dir := t.TempDir()
	typePath = filepath.Join(dir, "catalog.dtd")
	if err := os.WriteFile(typePath, []byte(workload.CatalogType().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	docPath = filepath.Join(dir, "doc.xml")
	xmlDoc, err := xmlio.Marshal(workload.PaperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(docPath, []byte(xmlDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	q1Path = filepath.Join(dir, "q1.psq")
	if err := os.WriteFile(q1Path, []byte(workload.Query1(200).String()), 0o644); err != nil {
		t.Fatal(err)
	}
	q4Path = filepath.Join(dir, "q4.psq")
	if err := os.WriteFile(q4Path, []byte(workload.Query4().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

func TestCmdValidate(t *testing.T) {
	typePath, docPath, _, _ := fixture(t)
	var out strings.Builder
	if err := cmdValidate([]string{"-type", typePath, docPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid: 24 nodes") {
		t.Errorf("output = %q", out.String())
	}
	if err := cmdValidate([]string{docPath}, &out); err == nil {
		t.Error("missing -type accepted")
	}
	if err := cmdValidate([]string{"-type", typePath, typePath}, &out); err == nil {
		t.Error("non-XML document accepted")
	}
}

func TestCmdQuery(t *testing.T) {
	typePath, docPath, q1Path, _ := fixture(t)
	_ = typePath
	var out strings.Builder
	if err := cmdQuery([]string{"-query", q1Path, docPath}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"canon", "nikon", "sony"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("query output missing %s", want)
		}
	}
	if strings.Contains(out.String(), "olympus") {
		t.Error("query output includes non-matching product")
	}
}

func TestCmdRefine(t *testing.T) {
	typePath, docPath, q1Path, _ := fixture(t)
	var out strings.Builder
	if err := cmdRefine([]string{"-type", typePath, "-doc", docPath, q1Path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<incomplete-tree>", "<data>", "canon"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("refine output missing %q", want)
		}
	}
	if err := cmdRefine([]string{"-type", typePath, "-doc", docPath}, &out); err == nil {
		t.Error("refine without queries accepted")
	}
}

func TestCmdAnswer(t *testing.T) {
	typePath, docPath, q1Path, q4Path := fixture(t)
	var out strings.Builder
	err := cmdAnswer([]string{
		"-type", typePath, "-doc", docPath,
		"-observe", q1Path, "-ask", q4Path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fully answerable: false") {
		t.Errorf("expected not fully answerable:\n%s", s)
	}
	if !strings.Contains(s, "answer certainly nonempty: true") {
		t.Errorf("expected certainly nonempty:\n%s", s)
	}
	if !strings.Contains(s, "canon") {
		t.Errorf("known-data answer missing content:\n%s", s)
	}
}
