// Command xinc is a CLI for the incomplete-XML library: validate documents
// against tree types, evaluate ps-queries, run a Refine chain over
// query-answer observations, and inspect the resulting incomplete tree.
//
// Usage:
//
//	xinc validate -type catalog.dtd doc.xml
//	xinc query    -query q.psq doc.xml
//	xinc refine   -type catalog.dtd -doc doc.xml q1.psq q2.psq ...
//	xinc answer   -type catalog.dtd -doc doc.xml -observe q1.psq -ask q2.psq
//
// File formats: documents are the xmlio XML dialect; tree types use the
// paper's "a -> b+ c?" syntax; queries use the indented ps-query syntax.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"incxml/internal/answer"
	"incxml/internal/dtd"
	"incxml/internal/query"
	"incxml/internal/refine"
	"incxml/internal/tree"
	"incxml/internal/xmlio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:], os.Stdout)
	case "query":
		err = cmdQuery(os.Args[2:], os.Stdout)
	case "refine":
		err = cmdRefine(os.Args[2:], os.Stdout)
	case "answer":
		err = cmdAnswer(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xinc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xinc validate -type TYPE DOC          check DOC against TYPE
  xinc query    -query QUERY DOC        evaluate a ps-query
  xinc refine   -type TYPE -doc DOC Q...  run Algorithm Refine over queries
  xinc answer   -type TYPE -doc DOC -observe Q -ask Q  answer from incomplete info`)
}

func loadDoc(path string) (tree.Tree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return tree.Tree{}, err
	}
	return xmlio.Unmarshal(string(data))
}

func loadType(path string) (*dtd.Type, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}

func loadQuery(path string) (query.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return query.Query{}, err
	}
	return query.Parse(string(data))
}

func cmdValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	typePath := fs.String("type", "", "tree type file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *typePath == "" || fs.NArg() != 1 {
		return fmt.Errorf("validate needs -type and one document")
	}
	ty, err := loadType(*typePath)
	if err != nil {
		return err
	}
	doc, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := ty.Validate(doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "valid: %d nodes, depth %d\n", doc.Size(), doc.Depth())
	return nil
}

func cmdQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	queryPath := fs.String("query", "", "ps-query file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("query needs -query and one document")
	}
	q, err := loadQuery(*queryPath)
	if err != nil {
		return err
	}
	doc, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	return xmlio.Write(w, q.Eval(doc))
}

func cmdRefine(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("refine", flag.ExitOnError)
	typePath := fs.String("type", "", "tree type file")
	docPath := fs.String("doc", "", "source document (simulated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *typePath == "" || *docPath == "" || fs.NArg() == 0 {
		return fmt.Errorf("refine needs -type, -doc and at least one query")
	}
	ty, err := loadType(*typePath)
	if err != nil {
		return err
	}
	doc, err := loadDoc(*docPath)
	if err != nil {
		return err
	}
	r := refine.NewRefiner(ty.Alphabet(), ty)
	for _, qp := range fs.Args() {
		q, err := loadQuery(qp)
		if err != nil {
			return err
		}
		a, err := r.ObserveOn(doc, q)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "observed %s: %d answer nodes, representation size %d\n",
			qp, a.Size(), r.Tree().Size())
	}
	return xmlio.WriteIncomplete(w, r.Reachable())
}

func cmdAnswer(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("answer", flag.ExitOnError)
	typePath := fs.String("type", "", "tree type file")
	docPath := fs.String("doc", "", "source document (simulated)")
	var observes sliceFlag
	fs.Var(&observes, "observe", "query to observe first (repeatable)")
	askPath := fs.String("ask", "", "query to answer from the incomplete tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *typePath == "" || *docPath == "" || *askPath == "" {
		return fmt.Errorf("answer needs -type, -doc and -ask")
	}
	ty, err := loadType(*typePath)
	if err != nil {
		return err
	}
	doc, err := loadDoc(*docPath)
	if err != nil {
		return err
	}
	r := refine.NewRefiner(ty.Alphabet(), ty)
	for _, qp := range observes {
		q, err := loadQuery(qp)
		if err != nil {
			return err
		}
		if _, err := r.ObserveOn(doc, q); err != nil {
			return err
		}
	}
	ask, err := loadQuery(*askPath)
	if err != nil {
		return err
	}
	know := r.Reachable()
	fully, err := answer.FullyAnswerable(know, ask)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fully answerable: %v\n", fully)
	certain, err := answer.CertainlyNonEmpty(know, ask)
	if err != nil {
		return err
	}
	possible, err := answer.PossiblyNonEmpty(know, ask)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "answer certainly nonempty: %v; possibly nonempty: %v\n", certain, possible)
	fmt.Fprintln(w, "answer on known data:")
	return xmlio.Write(w, ask.Eval(know.DataTree()))
}

// sliceFlag collects repeated string flags.
type sliceFlag []string

func (s *sliceFlag) String() string     { return fmt.Sprint([]string(*s)) }
func (s *sliceFlag) Set(v string) error { *s = append(*s, v); return nil }
